"""CampaignSpec / ExecutionPolicy / Campaign: the declarative surface.

The contract under test: one serializable object describes a whole
campaign; ``from_dict(to_dict(spec)) == spec`` exactly (property-tested
over every preset and randomised policies); a spec-driven run is
byte-identical to the legacy-kwarg run it replaces; manifests store the
spec verbatim so drift is spec inequality; and the legacy kwarg APIs
keep working behind a single ``DeprecationWarning``.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import ParameterError
from repro.sim.adaptive import AdaptiveCI, FixedReplicas, WilsonSuccessRate
from repro.sim.campaign import CampaignConfig, run_campaign
from repro.sim.distributions import (
    Empirical,
    Exponential,
    Mixture,
    Weibull,
    distribution_from_dict,
)
from repro.sim.executor import execute_campaign, execute_spec
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy


def make_grid(**overrides) -> CampaignConfig:
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0, 600.0),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=2,
        seed=2026,
        share_traces=True,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


def legacy_config(results_path=None, **overrides) -> CampaignConfig:
    return make_grid(results_path=results_path, **overrides)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("key", sorted(scenarios.CAMPAIGN_PRESETS))
    def test_every_preset_round_trips(self, key):
        spec = scenarios.get_campaign_preset(key).spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("key", sorted(scenarios.CAMPAIGN_PRESETS))
    def test_every_preset_survives_json_text(self, key):
        """Through actual JSON text, not just dicts (float spelling)."""
        spec = scenarios.get_campaign_preset(key).spec()
        assert CampaignSpec.from_dict(json.loads(spec.to_json())) == spec

    # One strategy per policy knob; queue fields stay consistent by
    # construction (queue implies framed sink and workers=1).
    policies = st.builds(
        ExecutionPolicy,
        workers=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
        sink=st.sampled_from(["ordered", "framed"]),
        lease_timeout=st.floats(min_value=0.1, max_value=600.0,
                                allow_nan=False),
        poll_interval=st.floats(min_value=0.01, max_value=5.0,
                                allow_nan=False),
    )

    @settings(max_examples=40, deadline=None)
    @given(policy=policies, data=st.data())
    def test_random_spec_round_trips(self, policy, data):
        from dataclasses import replace

        controller = data.draw(st.sampled_from([
            None,
            AdaptiveCI(max_replicas=2, tolerance=0.05),
            WilsonSuccessRate(max_replicas=2, tolerance=0.2),
        ]))
        policy = replace(policy, controller=controller)
        dist = data.draw(st.sampled_from([
            None,
            Weibull(1.0, 0.7),
            Empirical([0.5, 1.0, 2.5]),
            Mixture([Exponential(0.25), Exponential(1.25)], [0.2, 0.8]),
        ]))
        spec = CampaignSpec(grid=make_grid(distribution=dist), policy=policy)
        assert CampaignSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_distribution_round_trip_is_lossless(self):
        for dist in (
            Exponential(3.0),
            Weibull(2.0, 0.7),
            Empirical([1.0, 2.0, 4.0]),
            Mixture([Exponential(0.25), Exponential(1.1875)], [0.2, 0.8]),
        ):
            clone = distribution_from_dict(dist.to_dict())
            assert clone == dist
            assert clone.mean() == pytest.approx(dist.mean())

    def test_equality_is_by_value_not_identity(self):
        assert make_grid(distribution=Weibull(1.0, 0.7)) == \
            make_grid(distribution=Weibull(1.0, 0.7))
        assert Weibull(1.0, 0.7) != Weibull(1.0, 2.0)
        assert Empirical([1.0, 2.0]) != Empirical([2.0, 1.0])

    def test_explicit_fixed_replicas_normalises_to_default(self):
        spec = CampaignSpec(
            grid=make_grid(),
            policy=ExecutionPolicy(controller=FixedReplicas(2)),
        )
        assert spec.policy.controller is None
        assert spec == CampaignSpec(grid=make_grid())


class TestVersionGating:
    def test_unsupported_version_is_refused_by_number(self):
        data = CampaignSpec(grid=make_grid()).to_dict()
        data["version"] = 99
        with pytest.raises(ParameterError, match="version 99"):
            CampaignSpec.from_dict(data)

    def test_wrong_format_is_refused(self):
        with pytest.raises(ParameterError, match="format"):
            CampaignSpec.from_dict({"format": "something-else", "version": 1})

    def test_unknown_fields_are_refused(self):
        data = CampaignSpec(grid=make_grid()).to_dict()
        data["grid"]["workers"] = 4  # policy field misplaced into the grid
        with pytest.raises(ParameterError, match="unknown grid field"):
            CampaignSpec.from_dict(data)
        data = CampaignSpec(grid=make_grid()).to_dict()
        data["policy"]["sinc"] = "framed"
        with pytest.raises(ParameterError, match="sinc"):
            CampaignSpec.from_dict(data)

    def test_omitted_optional_fields_take_defaults(self):
        data = CampaignSpec(grid=make_grid()).to_dict()
        for key in ("replicas", "seed", "share_traces", "max_time",
                    "distribution"):
            del data["grid"][key]
        del data["policy"]
        spec = CampaignSpec.from_dict(data)
        assert spec.grid.replicas == 5 and spec.grid.seed == 777
        assert spec.policy == ExecutionPolicy()

    def test_unknown_controller_kind_is_refused(self):
        data = CampaignSpec(grid=make_grid()).to_dict()
        data["policy"]["controller"] = {"kind": "MedianOfMeans"}
        with pytest.raises(ParameterError, match="MedianOfMeans"):
            CampaignSpec.from_dict(data)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_results_path_is_not_spec_state(self):
        with pytest.raises(ParameterError, match="results_path"):
            CampaignSpec(grid=make_grid(results_path="r.jsonl"))

    def test_queue_with_workers_rejected_at_spec_time(self):
        """The satellite: refused when the policy is *built*, long before
        any executor or results file is involved."""
        with pytest.raises(ParameterError, match="workers"):
            ExecutionPolicy(queue="q", sink="framed", workers=4)
        # None/0 spell "every core" — an explicit parallelism request a
        # single-process queue worker would silently drop.
        with pytest.raises(ParameterError, match="workers"):
            ExecutionPolicy(queue="q", sink="framed", workers=None)
        with pytest.raises(ParameterError, match="workers"):
            ExecutionPolicy(queue="q", sink="framed", workers=0)

    def test_queue_requires_framed_sink_at_spec_time(self):
        with pytest.raises(ParameterError, match="sink='framed'"):
            ExecutionPolicy(queue="q")

    def test_bad_workers_and_chunks(self):
        with pytest.raises(ParameterError, match="workers"):
            ExecutionPolicy(workers=-1)
        with pytest.raises(ParameterError, match="chunk_size"):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(ParameterError, match="sink"):
            ExecutionPolicy(sink="sideways")

    def test_controller_budget_must_match_grid(self):
        with pytest.raises(ParameterError, match="max_replicas"):
            CampaignSpec(
                grid=make_grid(replicas=2),
                policy=ExecutionPolicy(
                    sink="framed",
                    controller=AdaptiveCI(max_replicas=5, tolerance=0.1),
                ),
            )

    def test_protocol_objects_normalise_to_keys(self):
        spec = CampaignSpec(grid=make_grid())
        assert spec.grid.protocols == ("double-nbl", "triple")


# ----------------------------------------------------------------------
# Spec-driven execution vs the legacy kwarg path
# ----------------------------------------------------------------------
class TestSpecExecution:
    @pytest.mark.parametrize("sink", ["ordered", "framed"])
    def test_spec_run_byte_identical_to_legacy(self, tmp_path, sink):
        spec_path = tmp_path / "spec.jsonl"
        legacy_path = tmp_path / "legacy.jsonl"
        Campaign(CampaignSpec(
            grid=make_grid(), policy=ExecutionPolicy(sink=sink),
        )).run(spec_path)
        with pytest.warns(DeprecationWarning):
            execute_campaign(legacy_config(legacy_path), workers=1, sink=sink)
        assert spec_path.read_bytes() == legacy_path.read_bytes()
        assert spec_path.with_name("spec.jsonl.manifest").read_text() == \
            legacy_path.with_name("legacy.jsonl.manifest").read_text()

    def test_manifest_is_the_spec_verbatim(self, tmp_path):
        path = tmp_path / "r.jsonl"
        spec = CampaignSpec(grid=make_grid())
        Campaign(spec).run(path)
        stored = json.loads(path.with_name("r.jsonl.manifest").read_text())
        assert CampaignSpec.from_dict(stored) == spec.identity()

    def test_resume_completes_and_matches(self, tmp_path):
        path = tmp_path / "r.jsonl"
        spec = CampaignSpec(grid=make_grid())
        Campaign(spec).run(path)
        full = path.read_bytes()
        path.write_bytes(b"\n".join(full.split(b"\n")[:3]) + b"\n")
        execution = Campaign(spec).resume(path)
        assert path.read_bytes() == full
        assert execution.report.cells_skipped == 1

    def test_resume_under_drifted_spec_is_spec_inequality(self, tmp_path):
        path = tmp_path / "r.jsonl"
        Campaign(CampaignSpec(grid=make_grid())).run(path)
        drifted = CampaignSpec(grid=make_grid(seed=9))
        with pytest.raises(ParameterError, match="seed"):
            Campaign(drifted).resume(path)

    def test_resume_ignores_volatile_policy_drift(self, tmp_path):
        """Worker count and chunking may change between run and resume —
        they cannot change output bytes, so they are not drift."""
        path = tmp_path / "r.jsonl"
        Campaign(CampaignSpec(grid=make_grid())).run(path)
        full = path.read_bytes()
        path.write_bytes(b"\n".join(full.split(b"\n")[:3]) + b"\n")
        repoliced = CampaignSpec(
            grid=make_grid(), policy=ExecutionPolicy(workers=1, chunk_size=1),
        )
        Campaign(repoliced).resume(path)
        assert path.read_bytes() == full

    def test_resume_reads_version1_manifests(self, tmp_path):
        """Results files written before the spec existed keep resuming:
        their sidecar holds the old hand-built fingerprint dict."""
        from repro.sim.executor import _legacy_fingerprint

        path = tmp_path / "r.jsonl"
        spec = CampaignSpec(grid=make_grid())
        Campaign(spec).run(path)
        full = path.read_bytes()
        manifest = path.with_name("r.jsonl.manifest")
        manifest.write_text(
            json.dumps(_legacy_fingerprint(spec), sort_keys=True) + "\n"
        )
        path.write_bytes(b"\n".join(full.split(b"\n")[:3]) + b"\n")
        Campaign(spec).resume(path)
        assert path.read_bytes() == full

    def test_version1_manifest_still_detects_drift(self, tmp_path):
        from repro.sim.executor import _legacy_fingerprint

        path = tmp_path / "r.jsonl"
        spec = CampaignSpec(grid=make_grid())
        Campaign(spec).run(path)
        path.with_name("r.jsonl.manifest").write_text(
            json.dumps(_legacy_fingerprint(spec), sort_keys=True) + "\n"
        )
        with pytest.raises(ParameterError, match="seed"):
            Campaign(CampaignSpec(grid=make_grid(seed=9))).resume(path)

    def test_execute_spec_rejects_configs(self):
        with pytest.raises(ParameterError, match="CampaignSpec"):
            execute_spec(make_grid())

    def test_facade_report_without_persistence(self):
        campaign = Campaign(CampaignSpec(grid=make_grid(
            m_values=(300.0,), replicas=1,
        )))
        campaign.run()
        text = campaign.report()
        assert "campaign results" in text and "cells run" in text

    def test_facade_report_streams_persisted_file(self, tmp_path):
        path = tmp_path / "r.jsonl"
        campaign = Campaign(CampaignSpec(grid=make_grid()))
        campaign.run(path)
        assert "no re-simulation" in campaign.report()

    def test_facade_report_follows_the_last_run(self, tmp_path):
        """An unpersisted run after a persisted one must not report the
        stale file."""
        campaign = Campaign(CampaignSpec(grid=make_grid()))
        campaign.run(tmp_path / "r.jsonl")
        campaign.run()  # in-memory
        assert "no re-simulation" not in campaign.report()
        assert "cells run" in campaign.report()

    def test_facade_by_preset_name(self):
        campaign = Campaign("smoke")
        assert campaign.spec.grid.protocols == ("double-nbl", "triple")
        with pytest.raises(ParameterError, match="unknown campaign preset"):
            Campaign("nope")

    def test_merge_requires_queue_policy(self):
        with pytest.raises(ParameterError, match="queue"):
            Campaign(CampaignSpec(grid=make_grid())).merge("out.jsonl")


@pytest.mark.campaign
class TestSpecQueue:
    """The distributed path driven purely through specs."""

    def test_queue_run_and_merge_match_single_machine(self, tmp_path):
        grid = make_grid()
        queued = CampaignSpec(grid=grid, policy=ExecutionPolicy(
            sink="framed", queue=str(tmp_path / "q"), worker_id="w1",
            lease_timeout=60.0,
        ))
        Campaign(queued).run()
        merged = tmp_path / "merged.jsonl"
        report = Campaign(queued).merge(merged)
        assert report.cells == 4

        reference = tmp_path / "ref.jsonl"
        Campaign(CampaignSpec(
            grid=grid, policy=ExecutionPolicy(sink="framed"),
        )).run(reference)
        assert merged.read_bytes() == reference.read_bytes()
        # The merged manifest is the spec fingerprint, so the merged file
        # resumes (no-op here) under the single-machine framed spec.
        stored = json.loads(
            merged.with_name("merged.jsonl.manifest").read_text()
        )
        assert CampaignSpec.from_dict(stored) == CampaignSpec(
            grid=grid, policy=ExecutionPolicy(sink="framed"),
        ).identity()

    def test_drifted_spec_cannot_join_queue(self, tmp_path):
        queue = str(tmp_path / "q")
        Campaign(CampaignSpec(
            grid=make_grid(),
            policy=ExecutionPolicy(sink="framed", queue=queue),
        )).run()
        drifted = CampaignSpec(
            grid=make_grid(seed=9),
            policy=ExecutionPolicy(sink="framed", queue=queue),
        )
        with pytest.raises(ParameterError, match="different campaign"):
            Campaign(drifted).run()


# ----------------------------------------------------------------------
# The deprecated kwarg surface
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_run_campaign_still_works_with_one_warning(self):
        config = legacy_config(m_values=(300.0,), replicas=1)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            cells = run_campaign(config)
        deprecations = [w for w in record
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "CampaignSpec" in str(deprecations[0].message)
        assert len(cells) == 2  # 2 protocols x 1 M x 1 phi

    def test_run_campaign_accepts_legacy_executor_kwargs(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with pytest.warns(DeprecationWarning):
            run_campaign(legacy_config(path), sink="framed")
        assert path.exists()

    def test_run_campaign_matches_spec_path(self):
        config = legacy_config()
        with pytest.warns(DeprecationWarning):
            legacy = run_campaign(config)
        spec_cells = Campaign(CampaignSpec(grid=make_grid())).run().cells
        assert [c.summary.mean for c in legacy] == \
            [c.summary.mean for c in spec_cells]

    def test_execute_campaign_warns_and_delegates(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="CampaignSpec"):
            execution = execute_campaign(legacy_config(), workers=1)
        assert execution.report.cells_run == 4

    def test_legacy_queue_workers_conflict_comes_from_the_policy(self,
                                                                 tmp_path):
        """The old deep-in-the-executor refusal now fires during spec
        construction — before the queue directory is even touched."""
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ParameterError, match="workers"):
                execute_campaign(
                    legacy_config(), queue=tmp_path / "q", sink="framed",
                    workers=4,
                )
        assert not (tmp_path / "q").exists()


# ----------------------------------------------------------------------
# WilsonSuccessRate (spec-selectable adaptive rule)
# ----------------------------------------------------------------------
class TestWilsonController:
    def test_stops_early_when_proportion_is_pinned(self):
        # 8 successes out of 8 at 95%: Wilson width shrinks fast.
        rule = WilsonSuccessRate(max_replicas=50, tolerance=0.45,
                                 min_replicas=3, batch=1)
        wastes = [0.1] * 50
        from repro.sim.adaptive import stop_count

        stop = stop_count(rule, wastes)
        assert stop is not None and stop < 50

    def test_never_stops_before_min(self):
        rule = WilsonSuccessRate(max_replicas=10, tolerance=0.99,
                                 min_replicas=4)
        assert not rule.should_stop([0.1])
        assert not rule.should_stop([0.1, 0.1, 0.1])
        assert rule.should_stop([0.1, 0.1, 0.1, 0.1])

    def test_counts_nan_as_failure(self):
        nan = float("nan")
        tight = WilsonSuccessRate(max_replicas=100, tolerance=0.05,
                                  min_replicas=2, batch=1)
        # A mixed run keeps the proportion uncertain: no early stop yet.
        assert not tight.should_stop([0.1, nan, 0.1, nan])

    def test_cursor_agrees_with_should_stop(self):
        import math

        rule = WilsonSuccessRate(max_replicas=30, tolerance=0.3,
                                 min_replicas=3, batch=2)
        wastes = [0.1, float("nan"), 0.2, 0.15, float("nan"), 0.1] * 5
        cursor = rule.cursor()
        for n, w in enumerate(wastes, 1):
            live = cursor.push(w)
            assert live == rule.should_stop(wastes[:n])
            if live:
                break
        assert math.isfinite(rule.tolerance)

    def test_validation(self):
        with pytest.raises(ParameterError, match="tolerance"):
            WilsonSuccessRate(max_replicas=4, tolerance=1.5)
        with pytest.raises(ParameterError, match="max_replicas"):
            WilsonSuccessRate(max_replicas=0, tolerance=0.1)

    def test_selectable_from_spec_and_serialisable(self, tmp_path):
        spec = CampaignSpec(
            grid=make_grid(replicas=2),
            policy=ExecutionPolicy(
                sink="framed",
                controller=WilsonSuccessRate(max_replicas=2, tolerance=0.5),
            ),
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        path = tmp_path / "w.jsonl"
        execution = Campaign(spec).run(path)
        assert execution.report.replicas_run <= 2 * 4
        # And the manifest-carried controller drives the resume replay.
        full = path.read_bytes()
        Campaign(spec).resume(path)
        assert path.read_bytes() == full


# ----------------------------------------------------------------------
# Trace-bootstrap preset
# ----------------------------------------------------------------------
class TestTraceBootstrapPreset:
    def test_registered_and_empirical(self):
        preset = scenarios.get_campaign_preset("trace-bootstrap")
        dist = preset.campaign_config().distribution
        assert isinstance(dist, Empirical)
        assert dist.data.size == len(scenarios.TRACE_INTERARRIVALS)

    def test_trace_is_overdispersed(self):
        """The recorded trace must actually stress clustering (CV > 1) —
        otherwise it duplicates the exponential presets."""
        import numpy as np

        data = np.asarray(scenarios.TRACE_INTERARRIVALS)
        assert data.std() / data.mean() > 1.0

    def test_spec_round_trips_with_trace(self):
        spec = scenarios.get_campaign_preset("trace-bootstrap").spec()
        assert CampaignSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_empirical_grammar_rejects_garbage(self):
        from dataclasses import replace

        preset = scenarios.get_campaign_preset("trace-bootstrap")
        bad = replace(preset, failure_law="empirical:1.0,fast,2.0")
        with pytest.raises(ParameterError, match="empirical"):
            bad.distribution()
