"""Property-based tests of the simulation substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.application import Application
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.topology import contiguous_groups, random_groups, strided_groups


@settings(max_examples=60)
@given(times=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                      max_size=50))
def test_engine_executes_in_nondecreasing_time(times):
    eng = Engine()
    seen: list[float] = []
    for t in times:
        eng.schedule(t, lambda e, ev: seen.append(e.now))
    eng.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)


@settings(max_examples=60)
@given(
    steps=st.lists(
        st.tuples(st.sampled_from(["advance", "commit", "rollback"]),
                  st.floats(min_value=0.0, max_value=100.0)),
        max_size=60,
    )
)
def test_application_invariants(steps):
    """committed ≤ done always; rollback restores exactly the commit level."""
    app = Application(work_target=1e9)
    for op, amount in steps:
        if op == "advance":
            app.advance(amount)
        elif op == "commit":
            app.commit_snapshot(now=0.0)
        else:
            app.rollback()
            assert app.work_done == app.committed_work
        assert app.committed_work <= app.work_done + 1e-9
        assert app.work_lost >= 0.0


@settings(max_examples=40)
@given(
    n_pairs=st.integers(min_value=1, max_value=20),
    events=st.lists(
        st.tuples(st.integers(min_value=0, max_value=39),
                  st.floats(min_value=0.0, max_value=100.0)),
        max_size=40,
    ),
)
def test_cluster_fatal_iff_distinct_member_in_window(n_pairs, events):
    """Replay random failures; cross-check the fatal flag against a simple
    reference bookkeeping of open windows."""
    n = 2 * n_pairs
    cluster = Cluster(contiguous_groups(n, 2))
    open_windows: dict[int, tuple[int, float]] = {}  # group -> (node, end)
    risk = 7.5
    t = 0.0
    for node_raw, dt in events:
        node = node_raw % n
        t += dt
        group = node // 2
        expect_fatal = False
        if group in open_windows:
            rec_node, end = open_windows[group]
            if t <= end and rec_node != node:
                expect_fatal = True
        got_fatal = cluster.on_failure(node, t, risk)
        assert got_fatal == expect_fatal
        if expect_fatal:
            return  # run over — one fatal ends the scenario
        open_windows[group] = (node, t + risk)
        # Close expired windows lazily, mirroring the DES risk-end events.
        for g, (rec, end) in list(open_windows.items()):
            if end < t:
                cluster.on_risk_end(rec, end)
                del open_windows[g]


@settings(max_examples=40)
@given(
    n_groups=st.integers(min_value=1, max_value=30),
    g=st.sampled_from([2, 3]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_topologies_partition(n_groups, g, seed):
    n = n_groups * g
    for assignment in (
        contiguous_groups(n, g),
        strided_groups(n, g),
        random_groups(n, g, np.random.default_rng(seed)),
    ):
        nodes = sorted(v for grp in assignment.groups for v in grp)
        assert nodes == list(range(n))
        for node in range(n):
            assert node in assignment.members(node)
            assert len(assignment.buddies(node)) == g - 1
            assert node not in assignment.buddies(node)
