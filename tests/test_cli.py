"""CLI: argument parsing and command execution."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_commands_exist(self):
        parser = build_parser()
        for key in ("table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            args = parser.parse_args([key])
            assert args.command == key

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-checkpoint" in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "Figure 5" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "exa" in capsys.readouterr().out

    def test_fig5_with_csv(self, capsys, tmp_path):
        assert main(["fig5", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.csv").exists()
        body = (tmp_path / "fig5.csv").read_text()
        assert body.startswith("phi_over_R,")

    def test_fig6_csv_multi_panel(self, capsys, tmp_path):
        assert main(["fig6", "--csv", str(tmp_path)]) == 0
        written = list(tmp_path.glob("fig6_*.csv"))
        assert len(written) == 3

    def test_optimum(self, capsys):
        assert main([
            "optimum", "--protocol", "triple", "--scenario", "base",
            "--M", "7h", "--phi", "0.4", "--T", "10d",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimal P" in out and "risk window" in out and "P(success)" in out

    def test_optimum_default_phi(self, capsys):
        assert main(["optimum"]) == 0
        assert "phi/R = 0.500" in capsys.readouterr().out

    def test_optimum_infeasible(self, capsys):
        assert main(["optimum", "--M", "15s", "--phi", "0"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_validate_quick(self, capsys):
        rc = main([
            "validate", "--scenario", "base", "--M", "10min",
            "--phi", "1.0", "--risk-T", "5d", "--risk-M", "1min",
        ])
        out = capsys.readouterr().out
        assert "verdict" in out
        assert rc == 0, out

    def test_tune_free(self, capsys):
        assert main(["tune", "--protocol", "triple", "--M", "7h"]) == 0
        out = capsys.readouterr().out
        assert "tuned phi" in out and "risk window" in out

    def test_tune_constrained(self, capsys):
        assert main(["tune", "--protocol", "triple", "--M", "10min",
                     "--T", "30d", "--min-success", "0.9999"]) == 0
        assert "P(success)" in capsys.readouterr().out

    def test_tune_unreachable_floor(self, capsys):
        rc = main(["tune", "--protocol", "double-nbl", "--M", "1min",
                   "--T", "30d", "--min-success", "0.999999"])
        assert rc == 1
        assert "no phi meets" in capsys.readouterr().out

    def test_intro_command(self, capsys):
        assert main(["intro"]) == 0
        assert "0.8" in capsys.readouterr().out
