"""CLI: argument parsing and command execution."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_commands_exist(self):
        parser = build_parser()
        for key in ("table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            args = parser.parse_args([key])
            assert args.command == key

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro-checkpoint" in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "Figure 5" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "exa" in capsys.readouterr().out

    def test_fig5_with_csv(self, capsys, tmp_path):
        assert main(["fig5", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.csv").exists()
        body = (tmp_path / "fig5.csv").read_text()
        assert body.startswith("phi_over_R,")

    def test_fig6_csv_multi_panel(self, capsys, tmp_path):
        assert main(["fig6", "--csv", str(tmp_path)]) == 0
        written = list(tmp_path.glob("fig6_*.csv"))
        assert len(written) == 3

    def test_optimum(self, capsys):
        assert main([
            "optimum", "--protocol", "triple", "--scenario", "base",
            "--M", "7h", "--phi", "0.4", "--T", "10d",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimal P" in out and "risk window" in out and "P(success)" in out

    def test_optimum_default_phi(self, capsys):
        assert main(["optimum"]) == 0
        assert "phi/R = 0.500" in capsys.readouterr().out

    def test_optimum_infeasible(self, capsys):
        assert main(["optimum", "--M", "15s", "--phi", "0"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_validate_quick(self, capsys):
        rc = main([
            "validate", "--scenario", "base", "--M", "10min",
            "--phi", "1.0", "--risk-T", "5d", "--risk-M", "1min",
        ])
        out = capsys.readouterr().out
        assert "verdict" in out
        assert rc == 0, out

    def test_tune_free(self, capsys):
        assert main(["tune", "--protocol", "triple", "--M", "7h"]) == 0
        out = capsys.readouterr().out
        assert "tuned phi" in out and "risk window" in out

    def test_tune_constrained(self, capsys):
        assert main(["tune", "--protocol", "triple", "--M", "10min",
                     "--T", "30d", "--min-success", "0.9999"]) == 0
        assert "P(success)" in capsys.readouterr().out

    def test_tune_unreachable_floor(self, capsys):
        rc = main(["tune", "--protocol", "double-nbl", "--M", "1min",
                   "--T", "30d", "--min-success", "0.999999"])
        assert rc == 1
        assert "no phi meets" in capsys.readouterr().out

    def test_intro_command(self, capsys):
        assert main(["intro"]) == 0
        assert "0.8" in capsys.readouterr().out


class TestCampaignCommand:
    #: Small 2-protocol × 2-M grid that runs in well under a second.
    QUICK = [
        "campaign", "--protocols", "double-nbl,triple", "--M", "300,600",
        "--phi", "1.0", "--n", "12", "--work-target", "15min",
        "--replicas", "2", "--seed", "99",
    ]

    def test_quick_grid(self, capsys):
        assert main(self.QUICK) == 0
        out = capsys.readouterr().out
        assert "campaign results" in out
        assert "4/4 cells run" in out and "workers=1" in out

    def test_protocols_tolerate_spaces_and_trailing_commas(self, capsys):
        assert main([
            "campaign", "--protocols", "double-nbl, triple,", "--M", "300",
            "--phi", "1.0", "--n", "12", "--work-target", "10min",
            "--replicas", "2",
        ]) == 0
        assert "2/2 cells run" in capsys.readouterr().out

    def test_parses_human_units(self, capsys):
        assert main([
            "campaign", "--protocols", "double-nbl", "--M", "5min,10min",
            "--phi", "0.5,1.0", "--n", "12", "--work-target", "10min",
            "--replicas", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "4/4 cells run" in out

    def test_results_and_resume(self, capsys, tmp_path):
        path = tmp_path / "campaign.jsonl"
        args = self.QUICK + ["--results", str(path)]
        assert main(args) == 0
        full = path.read_bytes()
        capsys.readouterr()

        # Simulate an interruption: drop the last two records.
        path.write_bytes(b"".join(full.splitlines(keepends=True)[:-2]))
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1/4 cells run (3 resumed)" in out
        assert path.read_bytes() == full

    def test_resume_requires_results(self, capsys):
        assert main(self.QUICK + ["--resume"]) == 2
        assert "--resume requires --results" in capsys.readouterr().err

    def test_preset_selection(self, capsys):
        assert main([
            "campaign", "--preset", "high-churn", "--replicas", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "18/18 cells run" in out  # 3 protocols × 3 M × 2 phi

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--preset", "nope"])

    def test_dump_spec_round_trips_through_the_cli(self, capsys, tmp_path):
        """--dump-spec prints the spec the flags describe; --spec FILE
        replays it identically (same cells, same results bytes)."""
        results_a = tmp_path / "a.jsonl"
        results_b = tmp_path / "b.jsonl"
        assert main(self.QUICK + ["--dump-spec"]) == 0
        spec_text = capsys.readouterr().out
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(spec_text)

        assert main(self.QUICK + ["--results", str(results_a)]) == 0
        assert main(["campaign", "--spec", str(spec_file),
                     "--results", str(results_b)]) == 0
        assert results_a.read_bytes() == results_b.read_bytes()

    def test_dump_spec_of_a_preset_names_its_grid(self, capsys):
        import json

        assert main(["campaign", "--preset", "smoke", "--dump-spec"]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["format"] == "repro-campaign-spec"
        assert spec["grid"]["protocols"] == ["double-nbl", "triple"]

    def test_dump_spec_refuses_results(self, capsys, tmp_path):
        rc = main(self.QUICK + ["--dump-spec", "--results",
                                str(tmp_path / "r.jsonl")])
        assert rc == 2
        assert "--dump-spec" in capsys.readouterr().err

    def test_spec_file_fixes_everything(self, capsys, tmp_path):
        spec_file = tmp_path / "grid.json"
        assert main(self.QUICK + ["--dump-spec"]) == 0
        spec_file.write_text(capsys.readouterr().out)
        rc = main(["campaign", "--spec", str(spec_file), "--workers", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--spec fixes the whole campaign" in err and "--workers" in err

    def test_spec_file_resume(self, capsys, tmp_path):
        spec_file = tmp_path / "grid.json"
        results = tmp_path / "r.jsonl"
        assert main(self.QUICK + ["--dump-spec"]) == 0
        spec_file.write_text(capsys.readouterr().out)
        assert main(["campaign", "--spec", str(spec_file),
                     "--results", str(results)]) == 0
        full = results.read_bytes()
        results.write_bytes(b"".join(full.splitlines(keepends=True)[:-2]))
        capsys.readouterr()
        assert main(["campaign", "--spec", str(spec_file),
                     "--results", str(results), "--resume"]) == 0
        assert "resumed" in capsys.readouterr().out
        assert results.read_bytes() == full

    def test_bad_spec_file_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "repro-campaign-spec", "version": 99}')
        rc = main(["campaign", "--spec", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ") and "version" in err

    def test_adaptive_wilson_flag(self, capsys, tmp_path):
        path = tmp_path / "w.jsonl"
        assert main([
            "campaign", "--protocols", "double-nbl,triple", "--M", "300",
            "--phi", "1.0", "--n", "12", "--work-target", "15min",
            "--replicas", "4", "--adaptive-wilson", "0.9",
            "--sink", "framed", "--results", str(path),
        ]) == 0
        out = capsys.readouterr().out
        # Degenerate all-success cells stop at the first batch boundary.
        assert "replicas=6" in out

    def test_adaptive_rules_are_mutually_exclusive(self, capsys):
        rc = main(self.QUICK + ["--adaptive-ci", "0.01",
                                "--adaptive-wilson", "0.2"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_preset_rejects_conflicting_grid_flags(self, capsys):
        rc = main(["campaign", "--preset", "high-churn", "--M", "60"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--preset fixes the grid" in err and "--M" in err

    def test_engine_refusals_print_cleanly(self, capsys):
        """ParameterErrors from the engine become one-line stderr
        messages with exit 2, not tracebacks."""
        rc = main(["campaign", "--M", "300,300", "--n", "12",
                   "--replicas", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ") and "duplicate M value" in err

    def test_share_traces_is_tristate(self):
        parser = build_parser()
        assert parser.parse_args(["campaign"]).share_traces is None
        assert parser.parse_args(
            ["campaign", "--share-traces"]).share_traces is True
        assert parser.parse_args(
            ["campaign", "--no-share-traces"]).share_traces is False

    def test_preset_can_disable_shared_traces(self, capsys):
        assert main(["campaign", "--preset", "high-churn", "--replicas", "1",
                     "--no-share-traces"]) == 0
        assert "18/18 cells run" in capsys.readouterr().out

    def test_help_documents_engine(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--help"])
        out = capsys.readouterr().out
        assert "--workers" in out and "--resume" in out and "--preset" in out
        assert "--sink" in out and "--adaptive-ci" in out

    def test_framed_sink_and_resume(self, capsys, tmp_path):
        path = tmp_path / "framed.jsonl"
        args = self.QUICK + ["--results", str(path), "--sink", "framed"]
        assert main(args) == 0
        assert "sink=framed" in capsys.readouterr().out
        full = path.read_bytes()

        # Tear the last cell mid-frame; resume completes it exactly.
        path.write_bytes(full[: len(full) - len(full.split(b"\n")[-2]) // 2])
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1/4 cells run (3 resumed)" in out
        assert path.read_bytes() == full

    def test_adaptive_ci_runs_and_reports_budget(self, capsys):
        import re

        assert main(self.QUICK + ["--replicas", "6", "--adaptive-ci", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "4/4 cells run" in out
        # A loose tolerance stops cells before the 6-replica ceiling; the
        # floor is min_replicas(3) per cell.
        replicas = int(re.search(r"replicas=(\d+)", out).group(1))
        assert 4 * 3 <= replicas < 4 * 6

    def test_adaptive_with_ordered_results_refused(self, capsys, tmp_path):
        rc = main(self.QUICK + ["--adaptive-ci", "0.01", "--results",
                                str(tmp_path / "r.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ") and "framed" in err


class TestDistributedCommand:
    """The multi-machine surface: --queue workers and 'campaign merge'."""

    def test_worker_then_merge_then_report(self, capsys, tmp_path):
        queue = tmp_path / "queue"
        assert main([
            "campaign", "--preset", "smoke", "--queue", str(queue),
            "--worker-id", "w1", "--lease", "10", "--poll", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "4/4 cells run" in out and "4/4 chunks done" in out

        merged = tmp_path / "merged.jsonl"
        assert main(["campaign", "merge", "--queue", str(queue),
                     "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "4 cells (8 frames) merged" in out

        assert main(["report", "--from-campaign", str(merged)]) == 0
        assert "8 runs" in capsys.readouterr().out

        # A late worker joining the finished queue has nothing to do.
        assert main([
            "campaign", "--preset", "smoke", "--queue", str(queue),
            "--worker-id", "w2", "--lease", "10", "--poll", "0.05",
        ]) == 0
        assert "0/4 cells run" in capsys.readouterr().out

    def test_merge_requires_queue_and_out(self, capsys, tmp_path):
        assert main(["campaign", "merge"]) == 2
        assert "--queue and --out" in capsys.readouterr().err
        assert main(["campaign", "merge", "--queue",
                     str(tmp_path / "q")]) == 2
        assert "--out" in capsys.readouterr().err

    def test_merge_of_missing_queue_fails_cleanly(self, capsys, tmp_path):
        rc = main(["campaign", "merge", "--queue", str(tmp_path / "nope"),
                   "--out", str(tmp_path / "o.jsonl")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ") and "manifest" in err

    @pytest.mark.parametrize("extra,fragment", [
        (["--results", "r.jsonl"], "--results"),
        (["--resume"], "--resume"),
        (["--workers", "4"], "--workers"),
        (["--sink", "ordered"], "--sink ordered"),
    ])
    def test_queue_conflicts(self, capsys, tmp_path, extra, fragment):
        rc = main(["campaign", "--preset", "smoke", "--queue",
                   str(tmp_path / "q"), *extra])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--queue conflicts with" in err and fragment in err

    def test_run_rejects_merge_only_flags(self, capsys, tmp_path):
        rc = main(["campaign", "--preset", "smoke", "--queue",
                   str(tmp_path / "q"), "--out",
                   str(tmp_path / "m.jsonl")])
        assert rc == 2
        assert "campaign merge" in capsys.readouterr().err

    def test_merge_rejects_run_only_flags(self, capsys, tmp_path):
        rc = main(["campaign", "merge", "--queue", str(tmp_path / "q"),
                   "--out", str(tmp_path / "m.jsonl"),
                   "--replicas", "4", "--resume", "--workers", "8"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "only reads --queue/--out/--partial" in err
        assert "--replicas" in err and "--resume" in err
        assert "--workers" in err

    def test_distributed_tuning_flags_require_queue(self, capsys):
        rc = main(["campaign", "--preset", "smoke", "--worker-id", "w1",
                   "--poll", "0.1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "require --queue" in err
        assert "--worker-id" in err and "--poll" in err

    def test_bad_worker_id_fails_cleanly(self, capsys, tmp_path):
        rc = main(["campaign", "--preset", "smoke", "--queue",
                   str(tmp_path / "q"), "--worker-id", "no/slashes"])
        assert rc == 2
        assert "worker id" in capsys.readouterr().err

    def test_help_documents_distributed_surface(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--help"])
        out = capsys.readouterr().out
        assert "--queue" in out and "--worker-id" in out
        assert "--lease" in out and "merge" in out


class TestReportCommand:
    def _campaign(self, tmp_path, extra=()):
        path = tmp_path / "campaign.jsonl"
        assert main([
            "campaign", "--protocols", "double-nbl,triple", "--M", "300,600",
            "--phi", "0.5,2.0", "--n", "12", "--work-target", "15min",
            "--replicas", "2", "--seed", "99", "--results", str(path),
            *extra,
        ]) == 0
        return path

    @pytest.mark.parametrize("sink", ["ordered", "framed"])
    def test_renders_from_either_sink_format(self, capsys, tmp_path, sink):
        path = self._campaign(tmp_path, ["--sink", sink])
        capsys.readouterr()
        assert main(["report", "--from-campaign", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no re-simulation" in out and "16 runs" in out
        assert "waste ratios vs double-nbl" in out
        assert "mean waste surface: triple" in out

    def test_missing_file_is_a_clean_error(self, capsys, tmp_path):
        rc = main(["report", "--from-campaign", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "report: " in capsys.readouterr().err

    def test_non_campaign_file_is_a_clean_error(self, capsys, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not a results file\n")
        rc = main(["report", "--from-campaign", str(path)])
        assert rc == 2
        assert "report: " in capsys.readouterr().err

    def test_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["report"]) == 2
        assert "exactly one source" in capsys.readouterr().err
        rc = main(["report", "--from-campaign", str(tmp_path / "a.jsonl"),
                   "--from-spec", str(tmp_path / "s.json")])
        assert rc == 2
        assert "exactly one source" in capsys.readouterr().err

    def test_from_spec_requires_store(self, capsys, tmp_path):
        spec = tmp_path / "s.json"
        rc = main(["report", "--from-spec", str(spec)])
        assert rc == 2
        assert "--store" in capsys.readouterr().err

    def test_order_follows_grid_not_completion(self, capsys, tmp_path):
        """Framed files record cells in completion order; the report must
        render grid order (by cell index), so two reports of the same
        parallel campaign can never disagree on the ratio baseline."""
        from repro.io import dump_frame
        from repro.sim.results import DesResult

        def run(protocol, m):
            return DesResult(
                status="completed", makespan=1100.0, work_target=1000.0,
                work_done=1000.0, failures=1, rollbacks=1, work_lost=10.0,
                commits=5, risk_time=1.0,
                meta={"protocol": protocol, "M": m, "phi": 1.0},
            )

        path = tmp_path / "ooo.jsonl"
        # Cell 2 (triple) completed before cell 0 (double-nbl).
        path.write_text(
            dump_frame(run("triple", 300.0), cell=2, replica=0, seq=0) + "\n"
            + dump_frame(run("double-nbl", 300.0), cell=0, replica=0, seq=1) + "\n"
            + dump_frame(run("double-nbl", 600.0), cell=1, replica=0, seq=2) + "\n"
        )
        assert main(["report", "--from-campaign", str(path)]) == 0
        out = capsys.readouterr().out
        assert "waste ratios vs double-nbl" in out
        assert out.index("double-nbl") < out.index("triple")


class TestStoreCommand:
    QUICK = [
        "campaign", "--protocols", "double-nbl,triple", "--M", "300,600",
        "--phi", "1.0", "--n", "12", "--work-target", "15min",
        "--replicas", "2", "--seed", "99",
    ]

    def _populate(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(self.QUICK + ["--store", str(store), "--results",
                                  str(tmp_path / "cold.jsonl")]) == 0
        capsys.readouterr()
        return store

    def test_warm_rerun_via_cli_is_byte_identical(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        assert main(self.QUICK + ["--store", str(store), "--results",
                                  str(tmp_path / "warm.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "0/4 cells run (0 resumed, 4 cached)" in out
        assert "4 cells served from it" in out
        assert (tmp_path / "warm.jsonl").read_bytes() \
            == (tmp_path / "cold.jsonl").read_bytes()

    def test_store_mode_read_does_not_publish(self, capsys, tmp_path):
        from repro.store import CampaignStore

        store = tmp_path / "store"
        CampaignStore(store)  # an existing (empty) store
        assert main(self.QUICK + ["--store", str(store), "--store-mode",
                                  "read"]) == 0
        capsys.readouterr()
        assert main(["store", "stat", "--store", str(store)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_store_mode_read_refuses_missing_store(self, capsys, tmp_path):
        rc = main(self.QUICK + ["--store", str(tmp_path / "typo"),
                                "--store-mode", "read"])
        assert rc == 2
        assert "no results store" in capsys.readouterr().err

    def test_store_mode_requires_store(self, capsys):
        assert main(self.QUICK + ["--store-mode", "read"]) == 2
        assert "--store-mode" in capsys.readouterr().err

    def test_spec_file_composes_with_store(self, capsys, tmp_path):
        """--store layers over --spec: volatile policy, same campaign."""
        spec_file = tmp_path / "spec.json"
        assert main(self.QUICK + ["--dump-spec"]) == 0
        spec_file.write_text(capsys.readouterr().out)
        store = tmp_path / "store"
        base = ["campaign", "--spec", str(spec_file), "--store", str(store)]
        assert main(base + ["--results", str(tmp_path / "a.jsonl")]) == 0
        capsys.readouterr()
        assert main(base + ["--results", str(tmp_path / "b.jsonl")]) == 0
        assert "4 cached" in capsys.readouterr().out
        assert (tmp_path / "a.jsonl").read_bytes() \
            == (tmp_path / "b.jsonl").read_bytes()

    def test_ls_stat_filters_and_verify(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        assert main(["store", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "8/8 entries" in out and "double-nbl" in out
        assert main(["store", "ls", "--store", str(store),
                     "--protocol", "triple", "--M", "5min"]) == 0
        assert "2/2 entries" in capsys.readouterr().out
        assert main(["store", "stat", "--store", str(store),
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "8 entries" in out and "no corruption" in out

    def test_stat_verify_fails_on_corruption(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        victim = next((store / "objects").glob("*/*.json"))
        victim.write_text("garbage")
        assert main(["store", "stat", "--store", str(store),
                     "--verify"]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_compact_then_warm_rerun_and_stat_breakdown(self, capsys,
                                                        tmp_path):
        store = self._populate(capsys, tmp_path)
        assert main(["store", "compact", "--store", str(store),
                     "--dry-run"]) == 0
        assert "would pack 8 of 8 loose entries" in capsys.readouterr().out
        assert main(["store", "compact", "--store", str(store)]) == 0
        assert "packed 8 of 8 loose entries" in capsys.readouterr().out

        assert main(["store", "stat", "--store", str(store),
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "no corruption" in out
        assert "0 loose + 8 in 1 segment(s)" in out

        # The segment-resident store still serves a warm re-run in full.
        assert main(self.QUICK + ["--store", str(store), "--results",
                                  str(tmp_path / "warm.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "0/4 cells run (0 resumed, 4 cached)" in out
        assert (tmp_path / "warm.jsonl").read_bytes() \
            == (tmp_path / "cold.jsonl").read_bytes()

    def test_gc_respects_budget_and_requires_one(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        assert main(["store", "gc", "--store", str(store)]) == 2
        assert "retention budget" in capsys.readouterr().err
        assert main(["store", "gc", "--store", str(store),
                     "--max-bytes", "0"]) == 0
        assert "evicted 8 entries" in capsys.readouterr().out

    def test_export_and_report_from_spec(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        spec_file = tmp_path / "spec.json"
        assert main(self.QUICK + ["--dump-spec"]) == 0
        spec_file.write_text(capsys.readouterr().out)

        out_file = tmp_path / "export.jsonl"
        assert main(["store", "export", "--store", str(store),
                     "--spec", str(spec_file), "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "zero re-simulation" in out and out_file.exists()

        assert main(["report", "--from-spec", str(spec_file),
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "campaign results" in out and "8 runs" in out
        assert "waste ratios vs double-nbl" in out

    def test_export_requires_spec_and_out(self, capsys, tmp_path):
        store = self._populate(capsys, tmp_path)
        assert main(["store", "export", "--store", str(store)]) == 2
        assert "--spec and --out" in capsys.readouterr().err

    def test_missing_store_is_a_clean_error(self, capsys, tmp_path):
        assert main(["store", "stat", "--store",
                     str(tmp_path / "absent")]) == 2
        assert "no results store" in capsys.readouterr().err

    def test_worker_procs_requires_queue(self, capsys):
        assert main(self.QUICK + ["--worker-procs", "2"]) == 2
        err = capsys.readouterr().err
        assert "require --queue" in err and "--worker-procs" in err

    def test_merge_refuses_store_flags(self, capsys, tmp_path):
        rc = main(["campaign", "merge", "--queue", str(tmp_path / "q"),
                   "--out", str(tmp_path / "m.jsonl"),
                   "--store", str(tmp_path / "s")])
        assert rc == 2
        assert "--store" in capsys.readouterr().err
