"""Scenario-parametrised failure-injection suite.

In the style of platform-failure resiliency suites (parametrise the fault
model, assert the invariants every scenario must satisfy), each campaign
preset — exascale-Weibull clustering, minutes-scale MTBF churn, slow
storage at large φ — is run through the campaign engine once, and every
cross-protocol invariant is checked over all of its cells:

* probabilities live in [0, 1] (success rates and their Wilson CIs);
* measured waste is non-negative: a run can never beat the failure-free
  makespan;
* failure accounting is conserved (rollbacks ≤ failures, lost work ≥ 0,
  completed runs did all their work);
* where the paper says model and simulation agree (exponential failures,
  the largest-MTBF column, no fatal failures), the DES waste lands within
  tolerance of the first-order prediction.

The grid-running invariants are marked ``campaign`` (they run full
sweeps), so tier-1 skips them and ``pytest --run-slow`` exercises them;
the preset-registry definition checks are cheap and stay in tier-1.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.protocols import get_protocol
from repro.core.waste import waste_at_optimum
from repro.experiments.scenarios import CAMPAIGN_PRESETS, get_campaign_preset
from repro.sim.executor import execute_campaign

#: |DES waste − first-order waste| bound where the regimes agree.
MODEL_TOLERANCE = 0.10


@pytest.fixture(scope="module", params=sorted(CAMPAIGN_PRESETS))
def preset_run(request):
    """One full (replica-trimmed) campaign per preset, shared module-wide."""
    preset = get_campaign_preset(request.param)
    config = preset.campaign_config(replicas=3)
    execution = execute_campaign(config, workers=1)
    return preset, config, list(execution.cells)


@pytest.mark.campaign
class TestScenarioInvariants:
    def test_grid_is_fully_covered(self, preset_run):
        preset, config, cells = preset_run
        expected = (len(config.protocols) * len(config.m_values)
                    * len(config.phi_values))
        assert len(cells) == expected
        keys = {(c.protocol, c.M, c.phi) for c in cells}
        assert len(keys) == expected

    def test_success_probabilities_are_probabilities(self, preset_run):
        _, _, cells = preset_run
        for cell in cells:
            assert 0.0 <= cell.success_rate <= 1.0
            lo, hi = cell.summary.success_ci
            assert 0.0 <= lo <= hi <= 1.0
            assert lo <= cell.success_rate <= hi

    def test_waste_is_nonnegative(self, preset_run):
        _, _, cells = preset_run
        for cell in cells:
            for res in cell.results:
                if res.succeeded:
                    assert res.waste >= 0.0
                else:
                    assert math.isnan(res.waste)
            if np.isfinite(cell.mean_waste):
                assert cell.mean_waste >= 0.0

    def test_failure_accounting_is_conserved(self, preset_run):
        _, config, cells = preset_run
        for cell in cells:
            for res in cell.results:
                assert res.rollbacks <= res.failures
                assert res.work_lost >= 0.0
                assert res.risk_time >= 0.0
                if res.succeeded:
                    assert res.work_done >= config.work_target
                    assert res.makespan >= config.work_target
                if res.status == "fatal":
                    assert np.isfinite(res.fatal_time)
                    assert len(res.fatal_group) >= 1

    def test_every_scenario_actually_injects_failures(self, preset_run):
        preset, _, cells = preset_run
        total_failures = sum(
            res.failures for cell in cells for res in cell.results
        )
        assert total_failures > 0, f"{preset.key} never failed a node"

    def test_des_waste_tracks_model_where_regimes_agree(self, preset_run):
        preset, config, cells = preset_run
        if preset.failure_law is not None:
            pytest.skip("first-order model assumes exponential failures")
        m_max = max(config.m_values)
        checked = 0
        for cell in cells:
            if cell.M != m_max or cell.success_rate < 1.0:
                continue
            if not np.isfinite(cell.mean_waste):
                continue
            params = config.base_params.with_updates(M=cell.M)
            spec = get_protocol(cell.protocol)
            model = float(np.asarray(
                waste_at_optimum(spec, params, cell.phi).total
            ))
            assert abs(cell.mean_waste - model) <= MODEL_TOLERANCE, (
                f"{preset.key}/{cell.protocol} M={cell.M} phi={cell.phi}: "
                f"DES {cell.mean_waste:.4f} vs model {model:.4f}"
            )
            checked += 1
        assert checked > 0, "no agreeing-regime cells were checked"


class TestPresetDefinitions:
    """The registry itself: presets must be well-formed and distinct."""

    def test_at_least_three_presets(self):
        assert len(CAMPAIGN_PRESETS) >= 3

    @pytest.mark.parametrize("key", sorted(CAMPAIGN_PRESETS))
    def test_configs_validate(self, key):
        preset = get_campaign_preset(key)
        config = preset.campaign_config()
        assert config.base_params.n == preset.n
        from repro.sim.executor import plan_cells
        assert plan_cells(config)  # resolves protocols, checks divisibility

    def test_weibull_preset_carries_its_law(self):
        from repro.sim.distributions import Weibull

        dist = get_campaign_preset("exa-weibull").campaign_config().distribution
        assert isinstance(dist, Weibull)
        assert dist.shape == pytest.approx(0.7)

    def test_wearout_preset_has_increasing_hazard(self):
        from repro.sim.distributions import Weibull

        dist = get_campaign_preset("weibull-wearout").campaign_config().distribution
        assert isinstance(dist, Weibull)
        assert dist.shape > 1.0  # k>1 = wear-out, not infant mortality

    def test_hetero_preset_is_an_exponential_mixture(self):
        from repro.sim.distributions import Exponential, Mixture

        dist = get_campaign_preset("hetero-mtbf").campaign_config().distribution
        assert isinstance(dist, Mixture)
        assert all(isinstance(c, Exponential) for c in dist.components)
        # Fragile minority: the low-MTBF component carries the small weight.
        means = [c.mean() for c in dist.components]
        weights = list(dist.weights)
        assert weights[means.index(min(means))] < 0.5

    def test_new_presets_round_trip_through_config(self):
        """Preset -> config -> manifest fingerprint is stable and complete
        (what resume compares): rebuilding the preset gives an identical
        fingerprint, and the failure law survives with its shape."""
        from repro.sim.adaptive import FixedReplicas
        from repro.sim.executor import _campaign_fingerprint

        for key in ("weibull-wearout", "hetero-mtbf"):
            preset = get_campaign_preset(key)
            fp1 = _campaign_fingerprint(
                preset.campaign_config(), "ordered",
                FixedReplicas(preset.replicas),
            )
            fp2 = _campaign_fingerprint(
                get_campaign_preset(key).campaign_config(), "ordered",
                FixedReplicas(preset.replicas),
            )
            assert fp1 == fp2
            assert fp1["grid"]["distribution"] is not None

    @pytest.mark.parametrize("bad_law", [
        "hyperexp", "hyperexp:", "hyperexp:0.5", "hyperexp:0.5@abc",
        "hyperexp:0.5@1,@2",
    ])
    def test_malformed_hyperexp_spec_raises(self, bad_law):
        from dataclasses import replace

        from repro.errors import ParameterError

        preset = replace(get_campaign_preset("hetero-mtbf"), failure_law=bad_law)
        with pytest.raises(ParameterError, match="hyperexp"):
            preset.distribution()

    def test_unknown_preset_raises(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="unknown campaign preset"):
            get_campaign_preset("does-not-exist")

    @pytest.mark.parametrize("bad_law", ["weibull", "weibull:abc", "cauchy:2"])
    def test_malformed_failure_law_raises_parameter_error(self, bad_law):
        from dataclasses import replace

        from repro.errors import ParameterError

        preset = replace(get_campaign_preset("exa-weibull"), failure_law=bad_law)
        with pytest.raises(ParameterError, match="law"):
            preset.distribution()
