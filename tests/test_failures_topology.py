"""Failure injection, traces, and buddy-group topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.distributions import Deterministic, Exponential, Weibull
from repro.sim.failures import FailureInjector, generate_trace, trace_statistics
from repro.sim.rng import RngFactory
from repro.sim.topology import (
    GroupAssignment,
    contiguous_groups,
    random_groups,
    ring_of_racks,
    strided_groups,
    topology_aware_groups,
)


class TestInjector:
    def test_platform_mtbf_conversion(self):
        inj = FailureInjector.from_platform_mtbf(100, 60.0, RngFactory(0))
        assert inj.node_mtbf == pytest.approx(6000.0)
        assert inj.platform_mtbf == pytest.approx(60.0)

    def test_custom_distribution_rescaled(self):
        inj = FailureInjector.from_platform_mtbf(
            10, 60.0, RngFactory(0), distribution=Weibull(1.0, shape=0.7)
        )
        assert isinstance(inj.distribution, Weibull)
        assert inj.distribution.mean() == pytest.approx(600.0)

    def test_per_node_streams_independent(self):
        inj = FailureInjector(4, Exponential(100.0), RngFactory(1))
        draws = [inj.next_failure_delay(i) for i in range(4)]
        assert len(set(draws)) == 4

    def test_reproducible(self):
        a = FailureInjector(4, Exponential(100.0), RngFactory(1)).initial_failure_times()
        b = FailureInjector(4, Exponential(100.0), RngFactory(1)).initial_failure_times()
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            FailureInjector(0, Exponential(1.0), RngFactory(0))
        inj = FailureInjector(2, Exponential(1.0), RngFactory(0))
        with pytest.raises(ParameterError):
            inj.next_failure_delay(5)
        with pytest.raises(ParameterError):
            FailureInjector.from_platform_mtbf(2, 0.0, RngFactory(0))


class TestTraces:
    def test_trace_sorted_and_bounded(self):
        inj = FailureInjector(8, Exponential(50.0), RngFactory(3))
        trace = generate_trace(inj, horizon=1000.0)
        assert np.all(np.diff(trace["time"]) >= 0)
        assert np.all(trace["time"] <= 1000.0)
        assert np.all((trace["node"] >= 0) & (trace["node"] < 8))

    def test_deterministic_counts(self):
        inj = FailureInjector(3, Deterministic(10.0), RngFactory(0))
        trace = generate_trace(inj, horizon=35.0)
        # Each node fails at 10, 20, 30 -> 9 failures.
        assert trace.shape[0] == 9

    def test_statistics_mtbf_estimate(self):
        n, m_platform = 50, 20.0
        inj = FailureInjector.from_platform_mtbf(n, m_platform, RngFactory(7))
        horizon = 50_000.0
        stats = trace_statistics(generate_trace(inj, horizon), horizon, n)
        assert stats.platform_mtbf == pytest.approx(m_platform, rel=0.1)
        assert stats.node_mtbf_estimate == pytest.approx(n * m_platform, rel=0.1)
        assert stats.interarrival_cv == pytest.approx(1.0, abs=0.1)  # Poisson

    def test_empty_trace(self):
        inj = FailureInjector(2, Deterministic(1e9), RngFactory(0))
        stats = trace_statistics(generate_trace(inj, 10.0), 10.0, 2)
        assert stats.count == 0
        assert stats.platform_mtbf == np.inf

    def test_validation(self):
        inj = FailureInjector(2, Exponential(1.0), RngFactory(0))
        with pytest.raises(ParameterError):
            generate_trace(inj, 0.0)
        with pytest.raises(ParameterError):
            trace_statistics(np.empty(0), -1.0, 2)


class TestGroupAssignments:
    def test_contiguous_pairs(self):
        a = contiguous_groups(6, 2)
        assert a.groups == ((0, 1), (2, 3), (4, 5))
        assert a.buddies(2) == (3,)
        assert a.group_of(5) == 2

    def test_contiguous_triples_rotation(self):
        a = contiguous_groups(6, 3)
        # §IV rotation: buddies(p) = (preferred, secondary).
        assert a.buddies(0) == (1, 2)
        assert a.buddies(1) == (2, 0)
        assert a.buddies(2) == (0, 1)

    def test_strided(self):
        a = strided_groups(6, 2)
        assert a.groups == ((0, 3), (1, 4), (2, 5))

    def test_random_is_partition(self):
        a = random_groups(30, 3, np.random.default_rng(0))
        seen = sorted(node for g in a.groups for node in g)
        assert seen == list(range(30))
        assert all(len(g) == 3 for g in a.groups)

    def test_random_reproducible(self):
        a = random_groups(10, 2, np.random.default_rng(5))
        b = random_groups(10, 2, np.random.default_rng(5))
        assert a.groups == b.groups

    def test_members_includes_self(self):
        a = contiguous_groups(4, 2)
        assert a.members(1) == (0, 1)

    @pytest.mark.parametrize("n,g", [(5, 2), (7, 3), (0, 2), (2, 1)])
    def test_validation(self, n, g):
        with pytest.raises(ParameterError):
            contiguous_groups(n, g)

    def test_assignment_rejects_non_partition(self):
        with pytest.raises(ParameterError):
            GroupAssignment(4, 2, ((0, 1), (1, 2)))
        with pytest.raises(ParameterError):
            GroupAssignment(4, 2, ((0, 1, 2), (3,)))


class TestTopologyAware:
    def test_ring_of_racks_structure(self):
        g = ring_of_racks(n_racks=3, nodes_per_rack=4)
        assert g.number_of_nodes() == 12
        assert g.nodes[5]["rack"] == 1
        # Intra-rack edges are distance 1.
        assert g.edges[4, 5]["distance"] == 1.0

    def test_groups_prefer_close_nodes(self):
        g = ring_of_racks(n_racks=2, nodes_per_rack=4)
        a = topology_aware_groups(g, 2)
        # Without anti-affinity, buddies stay intra-rack (distance 1).
        for group in a.groups:
            racks = {g.nodes[v]["rack"] for v in group}
            assert len(racks) == 1

    def test_anti_affinity_spreads_racks(self):
        g = ring_of_racks(n_racks=4, nodes_per_rack=2)
        a = topology_aware_groups(g, 2, anti_affinity="rack")
        for group in a.groups:
            racks = {g.nodes[v]["rack"] for v in group}
            assert len(racks) == 2  # never both in one failure domain

    def test_rejects_mislabelled_graph(self):
        import networkx as nx

        g = nx.path_graph([10, 11])
        with pytest.raises(ParameterError):
            topology_aware_groups(g, 2)

    def test_ring_validation(self):
        with pytest.raises(ParameterError):
            ring_of_racks(0, 4)
