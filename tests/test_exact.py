"""Higher-order (renewal-form) waste model vs the paper's first-order form."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DOUBLE_NBL, TRIPLE, scenarios, waste
from repro.core.exact import (
    optimal_period_renewal,
    waste_gap,
    waste_renewal,
    waste_renewal_at_optimum,
)
from repro.errors import ParameterError


@pytest.fixture
def params():
    return scenarios.BASE.parameters(M=600.0)


class TestRenewalForm:
    def test_manual_value(self, params):
        P, phi = 300.0, 1.0
        F = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, phi, P)))
        c = 2.0 + phi
        expected = 1.0 - (1.0 - c / P) / (1.0 + F / params.M)
        assert waste_renewal(DOUBLE_NBL, params, phi, P) == pytest.approx(expected)

    def test_always_a_fraction(self):
        # Even where the paper's form saturates, the renewal form < 1
        # (as long as the period fits the fixed phases).
        params = scenarios.BASE.parameters(M=20.0)
        w = waste_renewal(DOUBLE_NBL, params, 4.0, 100.0)
        assert 0.0 < w < 1.0
        assert waste(DOUBLE_NBL, params, 0.0, 100.0) == 1.0  # paper form

    def test_below_min_period_saturates(self, params):
        assert waste_renewal(DOUBLE_NBL, params, 1.0, 10.0) == 1.0

    def test_m_override(self, params):
        out = waste_renewal(DOUBLE_NBL, params, 1.0, 300.0,
                            M=np.array([300.0, 3000.0]))
        assert out.shape == (2,) and out[0] > out[1]

    def test_rejects_bad_m(self, params):
        with pytest.raises(ParameterError):
            waste_renewal(DOUBLE_NBL, params, 1.0, 300.0, M=-1.0)


class TestGap:
    def test_gap_formula(self, params):
        P, phi = 300.0, 1.0
        F = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, phi, P)))
        c = 3.0
        expected = (1 - c / P) * (F / params.M) ** 2 / (1 + F / params.M)
        assert waste_gap(DOUBLE_NBL, params, phi, P) == pytest.approx(expected)

    def test_gap_positive_second_order(self, params):
        # Paper form is the pessimistic one.
        gap = waste_gap(DOUBLE_NBL, params, 1.0, 300.0)
        assert gap > 0
        # And second-order small in the paper's regimes.
        big_m = scenarios.BASE.parameters(M="7h")
        assert waste_gap(DOUBLE_NBL, big_m, 1.0, 300.0) < 1e-3

    def test_gap_nan_when_paper_saturates(self):
        params = scenarios.BASE.parameters(M=20.0)
        assert np.isnan(waste_gap(DOUBLE_NBL, params, 0.0, 100.0))

    @given(m=st.floats(min_value=100.0, max_value=1e6))
    @settings(max_examples=50)
    def test_forms_agree_to_first_order(self, m):
        params = scenarios.BASE.parameters(M=m)
        P = 300.0
        F = float(np.asarray(DOUBLE_NBL.expected_lost_time(params, 1.0, P)))
        gap = waste_gap(DOUBLE_NBL, params, 1.0, P)
        if np.isnan(gap):
            return
        assert gap <= (F / m) ** 2 + 1e-12


class TestRenewalOptimum:
    def test_positive_root_formula(self, params):
        phi = 1.0
        c = 3.0
        A = float(np.asarray(DOUBLE_NBL.lost_time_constant(params, phi)))
        expected = c + np.sqrt(c**2 + 2 * c * (params.M + A))
        assert optimal_period_renewal(DOUBLE_NBL, params, phi) == pytest.approx(
            expected
        )

    def test_optimum_beats_neighbours(self, params):
        phi = 1.0
        p_opt = optimal_period_renewal(DOUBLE_NBL, params, phi)
        w_opt = waste_renewal(DOUBLE_NBL, params, phi, p_opt)
        for f in (0.5, 0.8, 1.25, 2.0):
            assert w_opt <= waste_renewal(DOUBLE_NBL, params, phi, p_opt * f) + 1e-12
        assert waste_renewal_at_optimum(DOUBLE_NBL, params, phi) == pytest.approx(
            w_opt
        )

    def test_larger_than_paper_optimum(self, params):
        # The renewal form penalises long periods less.
        from repro import optimal_period

        phi = 1.0
        assert optimal_period_renewal(DOUBLE_NBL, params, phi) > optimal_period(
            DOUBLE_NBL, params, phi
        )

    def test_converges_to_young_at_large_m(self):
        params = scenarios.BASE.parameters(M=1e8)
        phi = 1.0
        p_renew = optimal_period_renewal(DOUBLE_NBL, params, phi)
        assert p_renew == pytest.approx(np.sqrt(2 * 3.0 * 1e8), rel=0.01)

    def test_clamped_to_min_period(self, params):
        # TRIPLE at phi -> 0: c -> 0, root -> 0, clamp to 2θ.
        p = optimal_period_renewal(TRIPLE, params, 0.0)
        assert p == pytest.approx(88.0)


class TestRenewalMatchesSimulator:
    def test_renewal_mc_matches_renewal_form_tightly(self, params):
        """The renewal MC estimates exactly the renewal-form waste, so the
        agreement here is much tighter than against the paper form."""
        from repro.sim.renewal import RenewalConfig, run_renewal_batch

        phi, period = 1.0, 250.0
        _, summary = run_renewal_batch(
            RenewalConfig(protocol=DOUBLE_NBL, params=params, phi=phi,
                          period=period, n_periods=100_000, seed=31),
            replicas=10,
        )
        w_renew = waste_renewal(DOUBLE_NBL, params, phi, period)
        w_paper = float(waste(DOUBLE_NBL, params, phi, period))
        assert abs(summary.mean - w_renew) < abs(summary.mean - w_paper)
        assert summary.mean == pytest.approx(w_renew, rel=0.01)
