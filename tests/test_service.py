"""Campaign service: coalescing, the registry, and the HTTP daemon.

The contract under test, in order of importance:

* **Warm queries cost zero simulations** — a live daemon answers
  ``GET /reports`` for a fully-warehoused spec without dispatching a
  single replica (counting-backend proof), even while a submitted
  campaign executes concurrently against the same store.
* **Coalescing** — N identical concurrent cold report queries trigger
  exactly one simulation per cell; a timed-out waiter raises without
  cancelling the leader's work.
* **The stream is the truth** — the NDJSON event stream of a finished
  campaign replays into a results file byte-identical to a direct
  ``execute_spec`` run of the same spec.
* **Graceful lifecycle** — sessions drain on shutdown (no torn sinks),
  cancellation is cell-aligned and resumable, and the CLI daemon exits
  cleanly on SIGTERM.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import CampaignCancelled, ParameterError
from repro.service import (
    CampaignRegistry,
    CampaignService,
    Coalescer,
    CoalesceTimeout,
)
from repro.service.registry import campaign_id
from repro.sim.backends import CampaignBackend, SerialBackend
from repro.sim.campaign import CampaignConfig
from repro.sim.events import CellFinished, event_from_dict
from repro.sim.executor import execute_spec
from repro.sim.sinks import make_sink
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy
from repro.store import CampaignStore


def make_spec(*, m_values=(300.0, 600.0), replicas=2, seed=2027,
              policy=None) -> CampaignSpec:
    grid = CampaignConfig(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=m_values,
        phi_values=(1.0,),
        work_target=900.0,
        replicas=replicas,
        seed=seed,
    )
    return CampaignSpec(grid=grid, policy=policy or ExecutionPolicy())


class CountingBackend(CampaignBackend):
    """Serial execution that counts every cell dispatched to it;
    optionally gated so a test can hold a campaign mid-flight."""

    def __init__(self, gate: threading.Event | None = None):
        self.cells_dispatched = 0
        self.inner = SerialBackend()
        self.gate = gate
        self._lock = threading.Lock()

    def execute(self, config, chunks, controller):
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate never opened"
        with self._lock:
            self.cells_dispatched += sum(len(c) for c in chunks)
        yield from self.inner.execute(config, chunks, controller)


def get_json(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def post_json(url: str, payload: dict, timeout: float = 30.0):
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def report_url(service: CampaignService, spec: CampaignSpec,
               **extra: str) -> str:
    params = {"spec": json.dumps(spec.to_dict()), **extra}
    return service.url("/reports?" + urllib.parse.urlencode(params))


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_identical_concurrent_calls_compute_once(self):
        coalescer = Coalescer()
        started = threading.Barrier(8)
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            assert release.wait(timeout=10.0)
            return "value"

        results = [None] * 8

        def query(i):
            started.wait(timeout=10.0)
            results[i] = coalescer.run("key", compute)

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        # Give every follower time to park on the leader's flight.
        time.sleep(0.1)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert results == ["value"] * 8
        assert len(calls) == 1
        stats = coalescer.stats()
        assert stats.led == 1
        assert stats.joined == 7
        assert stats.in_flight == 0

    def test_timeout_does_not_cancel_the_leader(self):
        """The impatient caller gets CoalesceTimeout; the underlying
        computation still completes exactly once and its value reaches
        the leader."""
        coalescer = Coalescer()
        leader_in = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            leader_in.set()
            assert release.wait(timeout=10.0)
            return 42

        leader_result = []
        leader = threading.Thread(
            target=lambda: leader_result.append(
                coalescer.run("key", compute)),
        )
        leader.start()
        assert leader_in.wait(timeout=10.0)
        with pytest.raises(CoalesceTimeout):
            coalescer.run("key", compute, timeout=0.05)
        release.set()
        leader.join(timeout=10.0)
        assert leader_result == [42]
        assert len(calls) == 1  # the timeout never re-ran the work
        assert coalescer.stats().timeouts == 1

    def test_errors_reach_every_waiter(self):
        coalescer = Coalescer()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=10.0)
            raise ParameterError("deliberate")

        errors = []

        def query():
            try:
                coalescer.run("key", compute)
            except ParameterError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=query) for _ in range(3)]
        threads[0].start()
        assert entered.wait(timeout=10.0)
        for t in threads[1:]:
            t.start()
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert errors == ["deliberate"] * 3

    def test_flights_clear_so_later_calls_recompute(self):
        coalescer = Coalescer()
        calls = []
        for _ in range(2):
            coalescer.run("key", lambda: calls.append(1))
        assert len(calls) == 2

    def test_distinct_keys_run_independently(self):
        coalescer = Coalescer()
        seen = []
        coalescer.run("a", lambda: seen.append("a"))
        coalescer.run("b", lambda: seen.append("b"))
        assert seen == ["a", "b"]
        assert coalescer.stats().led == 2


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_campaign_id_ignores_volatile_policy(self):
        spec = make_spec()
        tuned = make_spec(policy=ExecutionPolicy(workers=None,
                                                 chunk_size=2))
        assert campaign_id(spec) == campaign_id(tuned)
        assert campaign_id(spec) != campaign_id(make_spec(seed=1))

    def test_submit_runs_to_finished_and_is_idempotent(self, tmp_path):
        registry = CampaignRegistry(None, tmp_path / "svc")
        try:
            handle, created = registry.submit(make_spec())
            assert created
            assert handle.wait(timeout=60.0) == "finished"
            again, created_again = registry.submit(make_spec())
            assert again is handle
            assert not created_again
            snap = handle.snapshot()
            assert snap["state"] == "finished"
            assert snap["progress"]["cells_run"] == 4
            assert handle.results_path.exists()
        finally:
            registry.shutdown()

    def test_queue_specs_are_refused(self, tmp_path):
        registry = CampaignRegistry(None, tmp_path / "svc")
        try:
            spec = make_spec(policy=ExecutionPolicy(
                sink="framed", queue=str(tmp_path / "q")))
            with pytest.raises(ParameterError, match="queue"):
                registry.submit(spec)
        finally:
            registry.shutdown()

    def test_unknown_id_refused_by_name(self, tmp_path):
        registry = CampaignRegistry(None, tmp_path / "svc")
        try:
            with pytest.raises(ParameterError, match="bogus"):
                registry.get("bogus")
        finally:
            registry.shutdown()

    def test_cancel_then_resubmit_resumes(self, tmp_path):
        """Cancellation is cell-aligned: the results file stays a valid
        prefix, and re-submitting the same spec finishes the remainder
        from it instead of starting over."""
        gate = threading.Event()
        registry = CampaignRegistry(
            None, tmp_path / "svc",
            backend_factory=lambda spec: CountingBackend(gate),
        )
        try:
            handle, _ = registry.submit(make_spec())
            # Cancel while the backend is parked at the gate, then let
            # the session observe the flag at its next cell boundary.
            handle.cancel()
            gate.set()
            assert handle.wait(timeout=60.0) == "cancelled"
            assert isinstance(handle.error, CampaignCancelled)

            again, created = registry.submit(make_spec())
            assert again is handle
            assert not created
            assert handle.wait(timeout=60.0) == "finished"
            assert handle.runs == 2
        finally:
            registry.shutdown()
        # The resumed file equals a straight cold run's.
        direct = tmp_path / "direct.jsonl"
        execute_spec(make_spec(), results_path=direct,
                     backend=SerialBackend())
        assert handle.results_path.read_bytes() == direct.read_bytes()

    def test_shutdown_drains_running_campaigns(self, tmp_path):
        registry = CampaignRegistry(None, tmp_path / "svc")
        handle, _ = registry.submit(make_spec())
        registry.shutdown(drain=True)
        assert handle.state == "finished"
        with pytest.raises(ParameterError, match="shutting down"):
            registry.submit(make_spec(seed=5))

    def test_shutdown_without_drain_cancels_cleanly(self, tmp_path):
        gate = threading.Event()
        registry = CampaignRegistry(
            None, tmp_path / "svc",
            backend_factory=lambda spec: CountingBackend(gate),
        )
        handle, _ = registry.submit(make_spec())
        shutdown = threading.Thread(
            target=registry.shutdown, kwargs={"drain": False})
        shutdown.start()
        gate.set()
        shutdown.join(timeout=60.0)
        assert not shutdown.is_alive()
        assert handle.state in ("cancelled", "finished")


# ----------------------------------------------------------------------
# Session reuse (regression)
# ----------------------------------------------------------------------
class TestSessionReuse:
    def test_event_stream_is_single_shot_with_named_error(self, tmp_path):
        session = Campaign(make_spec()).session(tmp_path / "r.jsonl")
        session.run()
        assert session.state == "finished"
        with pytest.raises(ParameterError, match="consumed once"):
            next(session.events())

    def test_second_session_on_finished_campaign(self, tmp_path):
        """A finished Campaign opens further sessions cleanly: a resume
        session replays every cell without re-running it, a fresh one
        re-executes — both leaving byte-identical results."""
        campaign = Campaign(make_spec())
        path = tmp_path / "r.jsonl"
        campaign.session(path).run()
        baseline = path.read_bytes()

        resumed = campaign.session(path, resume=True).run()
        assert resumed.report.cells_run == 0
        assert resumed.report.cells_skipped == 4
        assert path.read_bytes() == baseline

        rerun = campaign.session(path).run()
        assert rerun.report.cells_run == 4
        assert path.read_bytes() == baseline


# ----------------------------------------------------------------------
# Coalesced report queries (service level)
# ----------------------------------------------------------------------
class TestCoalescedReports:
    def test_concurrent_cold_queries_simulate_each_cell_once(self, tmp_path):
        """Eight identical cold report queries against an empty store:
        exactly one fill campaign runs (4 cells total dispatched), and
        every caller gets the full report."""
        backends = []

        def factory(spec):
            backend = CountingBackend()
            backends.append(backend)
            return backend

        spec = make_spec()
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
            backend_factory=factory,
        ) as service:
            started = threading.Barrier(8)
            payloads = [None] * 8

            def query(i):
                started.wait(timeout=10.0)
                payloads[i] = service.report_query(spec)

            threads = [threading.Thread(target=query, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)

            assert all(p is not None for p in payloads)
            assert sum(b.cells_dispatched for b in backends) == 4
            assert service.coalescer.stats().led == 1
            assert service.coalescer.stats().joined == 7
            # After the coalesced fill, the store covers the spec: the
            # next query is warm and never builds a backend.
            n_backends = len(backends)
            warm = service.report_query(spec)
            assert len(backends) == n_backends
            assert warm["simulated_cells"] == 0
            assert warm["coverage"] == {"present": 8, "total": 8}

    def test_on_miss_fail_refuses_cold_specs(self, tmp_path):
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
        ) as service:
            from repro.service.app import _MissingCells

            with pytest.raises(_MissingCells, match="0/8"):
                service.report_query(make_spec(), on_miss="fail")
            with pytest.raises(ParameterError, match="on_miss"):
                service.report_query(make_spec(), on_miss="maybe")


# ----------------------------------------------------------------------
# The HTTP daemon, in-thread (tier 1)
# ----------------------------------------------------------------------
class TestServiceSmoke:
    def test_submit_query_shutdown(self, tmp_path):
        """One submit, one warm report, clean shutdown — the smallest
        end-to-end pass through every layer of the daemon."""
        spec = make_spec()
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
        ) as service:
            status, health = get_json(service.url("/healthz"))
            assert status == 200
            assert health["accepting"] is True

            status, created = post_json(
                service.url("/campaigns"), spec.to_dict())
            assert status == 201
            assert created["state"] in ("queued", "running", "finished")
            cid = created["id"]
            assert created["links"]["events"] == f"/campaigns/{cid}/events"

            assert service.registry.get(cid).wait(timeout=60.0) \
                == "finished"
            status, snap = get_json(service.url(f"/campaigns/{cid}"))
            assert status == 200
            assert snap["state"] == "finished"
            assert snap["progress"]["cells_run"] == 4

            status, warm = get_json(report_url(service, spec))
            assert status == 200
            assert warm["simulated_cells"] == 0
            assert warm["coverage"] == {"present": 8, "total": 8}
            assert "waste" in warm["report"].lower() \
                or warm["report"].strip()
        # Context-manager exit shut the daemon down; the socket is gone.
        with pytest.raises(urllib.error.URLError):
            get_json(service.url("/healthz"), timeout=2.0)

    def test_resubmit_is_idempotent_over_http(self, tmp_path):
        spec = make_spec()
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
        ) as service:
            status, first = post_json(
                service.url("/campaigns"), spec.to_dict())
            assert status == 201
            service.registry.get(first["id"]).wait(timeout=60.0)
            status, second = post_json(
                service.url("/campaigns"), spec.to_dict())
            assert status == 200
            assert second["id"] == first["id"]
            assert second["state"] == "finished"
            status, listing = get_json(service.url("/campaigns"))
            assert [c["id"] for c in listing["campaigns"]] == [first["id"]]

    def test_bad_requests_are_refused_by_name(self, tmp_path):
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
        ) as service:
            for path, expect in [
                ("/nope", 404),
                ("/campaigns/unknown", 400),
                ("/reports", 400),                      # no spec=
                ("/reports?spec=%7B%7D&x=1", 400),      # unknown param
            ]:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get_json(service.url(path))
                assert excinfo.value.code == expect
                detail = json.loads(excinfo.value.read())
                assert "error" in detail

    def test_cold_report_with_on_miss_fail_is_409(self, tmp_path):
        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
        ) as service:
            url = report_url(service, make_spec(), on_miss="fail")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_json(url)
            assert excinfo.value.code == 409


# ----------------------------------------------------------------------
# Acceptance: warm zero-sim queries under concurrent execution, and
# stream replay equivalence
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_warm_queries_zero_sim_while_campaign_runs_and_stream_replays(
            self, tmp_path):
        warm_spec = make_spec(seed=2027)
        cold_spec = make_spec(seed=31)

        # Warehouse the warm spec before the daemon exists.
        store = CampaignStore(tmp_path / "store", create=True)
        execute_spec(warm_spec, store=store, backend=SerialBackend())

        gate = threading.Event()
        built = []

        def factory(spec):
            backend = CountingBackend(
                gate if spec.identity() == cold_spec.identity() else None)
            built.append((spec, backend))
            return backend

        with CampaignService(
            store=tmp_path / "store", data_dir=tmp_path / "svc",
            backend_factory=factory,
        ) as service:
            status, submitted = post_json(
                service.url("/campaigns"), cold_spec.to_dict())
            assert status == 201
            cid = submitted["id"]
            handle = service.registry.get(cid)

            # The submitted campaign is parked at the gate: provably
            # mid-execution while we query the warm spec on the same
            # store.
            deadline = time.monotonic() + 30.0
            while handle.state != "running" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.state == "running"

            status, warm = get_json(report_url(service, warm_spec))
            assert status == 200
            assert warm["coverage"] == {"present": 8, "total": 8}
            assert warm["simulated_cells"] == 0
            assert warm["simulated_replicas"] == 0
            # Zero simulations is a counting fact, not an inference: no
            # backend was ever built for the warm spec.
            assert all(spec.identity() != warm_spec.identity()
                       for spec, _ in built)

            gate.set()
            assert handle.wait(timeout=120.0) == "finished"

            # -- stream replay equivalence -------------------------
            with urllib.request.urlopen(
                service.url(f"/campaigns/{cid}/events?follow=0"),
                timeout=30.0,
            ) as resp:
                assert resp.headers["Content-Type"] \
                    == "application/x-ndjson"
                lines = resp.read().decode("utf-8").splitlines()
            events = [event_from_dict(json.loads(line))
                      for line in lines]
            assert type(events[0]).__name__ == "CampaignStarted"
            assert type(events[-1]).__name__ == "CampaignFinished"

            # Replay exactly as SinkWriter wrote: finished cells, in
            # stream order, resume cells skipped.
            replayed = tmp_path / "replayed.jsonl"
            sink = make_sink("ordered", replayed)
            for event in events:
                if isinstance(event, CellFinished) \
                        and event.source != "resume":
                    sink.emit(event.plan, list(event.results))

            direct = tmp_path / "direct.jsonl"
            execute_spec(cold_spec, results_path=direct,
                         backend=SerialBackend())
            assert replayed.read_bytes() == direct.read_bytes()
            assert handle.results_path.read_bytes() \
                == direct.read_bytes()

            # The store saw concurrent readers; the service's own
            # counters prove the warm path went through lookups.
            reads = service.store.read_stats()
            assert reads.lookups > 0
            assert reads.active == 0


# ----------------------------------------------------------------------
# Daemon lifecycle (subprocess; needs --run-slow)
# ----------------------------------------------------------------------
def _spawn_daemon(tmp_path: pathlib.Path, *extra: str):
    env = os.environ.copy()
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", str(tmp_path / "store"), "--port", "0", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, bufsize=1,
    )
    line = proc.stdout.readline()
    assert "listening on" in line, line
    url = line.split("listening on ", 1)[1].split()[0]
    return proc, url


@pytest.mark.campaign
class TestDaemonLifecycle:
    def test_serve_answers_and_stops_on_sigterm(self, tmp_path):
        proc, url = _spawn_daemon(tmp_path)
        try:
            status, health = get_json(url + "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            status, body = post_json(
                url + "/campaigns", make_spec().to_dict())
            assert status == 201
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "stopped" in out

    def test_post_shutdown_drains_and_exits(self, tmp_path):
        proc, url = _spawn_daemon(tmp_path)
        try:
            status, body = post_json(
                url + "/campaigns", make_spec().to_dict())
            assert status == 201
            status, ack = post_json(url + "/shutdown", {})
            assert status == 202
            assert ack["drain"] is True
            out, err = proc.communicate(timeout=120.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        # Drained, not cancelled: the submitted campaign's results file
        # is complete (a resume run would find nothing to do).
        results = list((tmp_path / "store").glob(
            "service/campaigns/*/results.jsonl"))
        assert len(results) == 1
        direct = tmp_path / "direct.jsonl"
        execute_spec(make_spec(), results_path=direct,
                     backend=SerialBackend())
        assert results[0].read_bytes() == direct.read_bytes()
