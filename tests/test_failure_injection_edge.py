"""Failure-injection edge cases in the event simulator.

Exact ties, boundary strikes, minimal clusters, zero downtime — the
places where off-by-one/epsilon bugs in discrete-event protocol code
traditionally live.
"""

from __future__ import annotations

import pytest

from repro import DOUBLE_NBL, TRIPLE, Parameters
from repro.sim.application import Application
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.protocols.base import PlatformSim
from repro.sim.protocols.buddy import BuddySimProtocol
from repro.sim.topology import contiguous_groups
from tests.test_platform_sim import PARAMS, PERIOD, PHI, ScriptedInjector, run_platform

THETA = 34.0


class TestBoundaryStrikes:
    def test_failure_exactly_at_phase_boundary(self):
        """t=36 is the phase-1/2 boundary.  Failure events are scheduled
        at start() with the lowest sequence numbers, so a failure wins any
        timestamp tie: it lands at the very end of phase 1 (offset = θ),
        before the commit that the phase-end handler would have performed
        — the conservative reading of a crash "at" the boundary."""
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [36.0]}
        )
        assert status == "completed"
        # Block: D+R+re_time(1, θ) = 4 + (θ+σ+δ+34) = 4 + 134.
        assert makespan == pytest.approx(300.0 + 138.0)
        # The interrupted exchange never committed: whole period redone.
        assert app.work_lost == pytest.approx(33.0)

    def test_failure_exactly_at_period_end(self):
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [100.0]}
        )
        assert status == "completed"
        # Lands at period 2, phase 0, offset 0: block = 4 + (θ+σ+0).
        assert makespan == pytest.approx(300.0 + 4.0 + 98.0)

    def test_failure_at_time_zero(self):
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 97.0, {0: [0.0]}
        )
        assert status == "completed"
        # Nothing lost (work 0); block = 4 + re_time(0, 0) = 4 + 98.
        assert makespan == pytest.approx(100.0 + 102.0)
        assert app.work_lost == 0.0

    def test_failure_exactly_at_completion_instant(self):
        """A failure tied with the completion instant wins (lowest seq):
        the final stretch is re-executed — a crash "at" completion is
        treated as before it, never after."""
        status, makespan, _, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [300.0]}
        )
        assert status == "completed"
        # Block: D+R+re_time(2, σ) = 4 + (θ + 64) = 102, then the resumed
        # phase completes immediately.
        assert makespan == pytest.approx(300.0 + 102.0)

    def test_two_failures_same_instant_different_groups(self):
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [50.0], 2: [50.0]}
        )
        assert status == "completed"
        assert app.rollbacks == 2  # both processed, block restarted once

    def test_buddy_pair_simultaneous_failure_is_fatal(self):
        status, _, _, sim = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [50.0], 1: [50.0]}
        )
        assert status == "fatal"
        assert sim.fatal_time == pytest.approx(50.0)

    def test_failure_exactly_at_risk_end_is_fatal(self):
        """The risk window is closed: [t, t+risk].  A buddy failing at
        exactly t+risk ties with the risk-end event, and failures win ties
        (lowest seq) — the conservative call, matching the cluster's lazy
        expiry which only closes windows for strictly later times."""
        risk = 38.0  # D+R+θ at phi=1
        status, _, _, _ = run_platform(
            DOUBLE_NBL, 5 * 97.0, {0: [50.0], 1: [50.0 + risk]}
        )
        assert status == "fatal"

    def test_failure_just_after_risk_end_survives(self):
        risk = 38.0
        status, _, app, _ = run_platform(
            DOUBLE_NBL, 5 * 97.0, {0: [50.0], 1: [50.0 + risk + 1e-6]}
        )
        assert status == "completed"
        assert app.rollbacks == 2


class TestMinimalClusters:
    def test_two_node_cluster(self):
        status, makespan, _, _ = run_platform(
            DOUBLE_NBL, 97.0, {0: [50.0]}, n=2
        )
        assert status == "completed"

    def test_three_node_triple(self):
        status, makespan, _, _ = run_platform(
            TRIPLE, 98.0, {0: [50.0]}, n=3
        )
        assert status == "completed"

    def test_triple_three_failures_chain_fatal(self):
        # Node 0 at 50, node 1 inside the window, node 2 inside again.
        status, _, _, sim = run_platform(
            TRIPLE, 50 * 98.0, {0: [50.0], 1: [60.0]}, n=3
        )
        # In the DES's conservative rule the second distinct member is
        # already fatal (the cluster cannot rebuild two nodes at once).
        assert status == "fatal"

    def test_triple_staggered_failures_survive(self):
        # Risk at phi=1: D+R+2θ = 72; failures 80 s apart.
        status, _, app, _ = run_platform(
            TRIPLE, 20 * 98.0, {0: [50.0], 1: [135.0], 2: [220.0]}, n=3
        )
        assert status == "completed"
        assert app.rollbacks == 3


class TestPlatformVariants:
    def test_zero_downtime_zero_delta(self):
        params = Parameters(D=0, delta=0.0, R=4, alpha=10, M=10_000, n=4)
        proto = BuddySimProtocol(DOUBLE_NBL, params, 1.0, 100.0)
        plan = proto.phase_plan()
        assert plan[0].length == 0.0  # zero-length local checkpoint
        cluster = Cluster(contiguous_groups(4, 2))
        app = Application(work_target=200.0)
        engine = Engine()
        sim = PlatformSim(proto, ScriptedInjector(4, {0: [50.0]}), app,
                          engine, cluster)
        sim.start()
        engine.run(until=1e6)
        assert sim.finalize() == "completed"

    def test_nonzero_downtime_lengthens_block(self):
        params = Parameters(D=10.0, delta=2, R=4, alpha=10, M=10_000, n=4)
        proto = BuddySimProtocol(DOUBLE_NBL, params, 1.0, 100.0)
        cluster = Cluster(contiguous_groups(4, 2))
        app = Application(work_target=3 * 97.0)
        engine = Engine()
        sim = PlatformSim(proto, ScriptedInjector(4, {0: [50.0]}), app,
                          engine, cluster)
        sim.start()
        engine.run(until=1e6)
        assert sim.finalize() == "completed"
        # Same strike as the D=0 scenario plus 10 s of downtime.
        assert engine.now == pytest.approx(300.0 + 52.0 + 10.0)

    def test_failure_storm_many_rollbacks(self):
        """Five failures in one period; the run still completes and work
        accounting stays consistent."""
        times = [50.0, 130.0, 210.0, 290.0, 370.0]
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [times[0], times[2], times[4]],
                                   2: [times[1], times[3]]}
        )
        assert status == "completed"
        assert app.rollbacks == 5
        assert app.work_done == pytest.approx(3 * 97.0)
        assert makespan > 300.0

    def test_injector_renewal_after_replacement(self):
        """A node's failure process continues after its replacement."""
        status, _, app, sim = run_platform(
            DOUBLE_NBL, 5 * 97.0, {0: [50.0, 250.0, 450.0]}
        )
        assert status == "completed"
        assert sim.failures_seen == 3
