"""Property-based tests of the analytical model (hypothesis).

Invariants exercised over randomly drawn platforms and operating points:
monotonicities, bounds, ordering relations between protocols, and
consistency between independently implemented code paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import (
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    Parameters,
    optimal_period,
    risk_window,
    success_probability,
    waste,
)
from repro.core.waste import waste_at_optimum

# Random but physically sensible platforms.
platforms = st.builds(
    Parameters,
    D=st.floats(min_value=0.0, max_value=120.0),
    delta=st.floats(min_value=0.1, max_value=60.0),
    R=st.floats(min_value=0.5, max_value=120.0),
    alpha=st.floats(min_value=0.0, max_value=50.0),
    M=st.floats(min_value=60.0, max_value=10 * 86400.0),
    n=st.integers(min_value=6, max_value=10**7).map(lambda k: 6 * (k // 6 + 1)),
)

fractions = st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=150)
@given(params=platforms, f=fractions, p_scale=st.floats(min_value=1.0, max_value=50.0))
def test_waste_is_a_fraction(params, f, p_scale):
    """Waste always lands in [0, 1] for any (protocol, φ, P)."""
    phi = f * params.R
    for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE):
        p_min = float(np.asarray(spec.min_period(params, phi)))
        w = waste(spec, params, phi, p_scale * p_min)
        assert 0.0 <= w <= 1.0


@settings(max_examples=100)
@given(params=platforms, f=fractions)
def test_optimum_is_global_on_sampled_grid(params, f):
    """No sampled period beats the closed-form optimum."""
    phi = f * params.R
    for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE):
        p_opt = optimal_period(spec, params, phi)
        if not np.isfinite(p_opt):
            continue
        w_opt = waste(spec, params, phi, p_opt)
        p_min = float(np.asarray(spec.min_period(params, phi)))
        for candidate in np.geomspace(p_min, 100 * p_opt, 25):
            assert w_opt <= waste(spec, params, phi, candidate) + 1e-9


@settings(max_examples=100)
@given(params=platforms, f=fractions)
def test_bof_waste_dominates_nbl(params, f):
    """Eq. 8: F_bof ≥ F_nbl ⇒ BOF's optimal waste is never smaller."""
    phi = f * params.R
    w_bof = float(np.asarray(waste_at_optimum(DOUBLE_BOF, params, phi).total))
    w_nbl = float(np.asarray(waste_at_optimum(DOUBLE_NBL, params, phi).total))
    assert w_bof >= w_nbl - 1e-12


@settings(max_examples=100)
@given(params=platforms, f=fractions)
def test_risk_window_ordering(params, f):
    """BOF risk ≤ NBL risk ≤ TRIPLE risk (at the same φ)."""
    phi = f * params.R
    assert risk_window(DOUBLE_BOF, params, phi) <= risk_window(
        DOUBLE_NBL, params, phi
    ) + 1e-12
    assert risk_window(DOUBLE_NBL, params, phi) <= risk_window(
        TRIPLE, params, phi
    ) + 1e-12


@settings(max_examples=100)
@given(params=platforms, f=fractions,
       t_days=st.floats(min_value=0.01, max_value=120.0))
def test_success_probability_bounds_and_methods(params, f, t_days):
    """Both evaluation methods return probabilities; exponential ≥ 0 always."""
    phi = f * params.R
    T = t_days * 86400.0
    for spec in (DOUBLE_NBL, TRIPLE):
        p1 = success_probability(spec, params, phi, T)
        p2 = success_probability(spec, params, phi, T, method="exponential")
        assert 0.0 <= p1 <= 1.0
        assert 0.0 <= p2 <= 1.0


@settings(max_examples=100)
@given(params=platforms, f=fractions,
       t_days=st.floats(min_value=0.01, max_value=30.0))
def test_triple_formula_beats_double_at_same_risk_order(params, f, t_days):
    """A triple's fatal probability is higher-order: with identical λ and
    comparable windows, P_triple ≥ P_double_nbl whenever λ·Risk ≤ 1e-2."""
    phi = f * params.R
    T = t_days * 86400.0
    lam_risk = params.lam * risk_window(TRIPLE, params, phi)
    assume(lam_risk < 1e-2)
    p_tri = success_probability(TRIPLE, params, phi, T)
    p_nbl = success_probability(DOUBLE_NBL, params, phi, T)
    assert p_tri >= p_nbl - 1e-9


@settings(max_examples=80)
@given(params=platforms, f=st.floats(min_value=0.05, max_value=1.0))
def test_waste_monotone_in_mtbf(params, f):
    phi = f * params.R
    ms = np.geomspace(params.M, params.M * 100, 8)
    w = np.asarray(waste_at_optimum(DOUBLE_NBL, params, phi, M=ms).total)
    assert np.all(np.diff(w) <= 1e-10)


@settings(max_examples=80)
@given(params=platforms)
def test_triple_ff_waste_vanishes_at_phi0(params):
    """§V: with a fully hidden transfer TRIPLE's fault-free waste is 0."""
    bd = waste_at_optimum(TRIPLE, params, 0.0)
    if np.isfinite(float(np.asarray(bd.period))):
        assert float(np.asarray(bd.fault_free)) == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=60)
@given(
    params=platforms,
    f=fractions,
    split=st.floats(min_value=0.05, max_value=0.95),
)
def test_f_is_linear_in_period(params, f, split):
    """F(P) = A + P/2 ⇒ exact linearity between any two periods."""
    phi = f * params.R
    p1, p2 = 200.0, 2000.0
    spec = DOUBLE_NBL
    f1 = float(np.asarray(spec.expected_lost_time(params, phi, p1)))
    f2 = float(np.asarray(spec.expected_lost_time(params, phi, p2)))
    p_mid = split * p1 + (1 - split) * p2
    f_mid = float(np.asarray(spec.expected_lost_time(params, phi, p_mid)))
    assert f_mid == pytest.approx(split * f1 + (1 - split) * f2, rel=1e-9)
