"""The vectorized backend and its identity/equivalence contract.

What must hold (``repro/sim/vectorized.py`` module docstring):

* **Determinism** — vectorized replicas are pure functions of the
  replica key: re-running a cell anywhere reproduces its bytes.
* **Statistical equivalence** — completed-replica waste agrees with the
  DES within combined confidence intervals plus the renewal thinning
  bias, per protocol and per failure law.
* **Fallback identity** — cells the closed forms can't express (shared
  traces) run through the scalar DES, byte-identical to SerialBackend.
* **Separation** — the store never serves one engine's results to the
  other; specs carry the backend in their identity, so resume and queue
  joins refuse a backend change as drift.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import DOUBLE_NBL, TRIPLE, io as repro_io, scenarios
from repro.errors import InfeasibleModelError, ParameterError
from repro.sim.adaptive import AdaptiveCI, FixedReplicas
from repro.sim.backends import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    run_cell,
    run_cell_for_engine,
)
from repro.sim.campaign import CampaignConfig
from repro.sim.distributions import Gamma, LogNormal, Mixture, Weibull
from repro.sim.executor import execute_spec, plan_cells
from repro.sim.results import ci_half_width
from repro.sim.spec import CAMPAIGN_BACKENDS, Campaign, CampaignSpec, ExecutionPolicy
from repro.sim.vectorized import (
    VectorizedBackend,
    cell_engine,
    plan_engine,
    run_cell_vectorized,
)
from repro.store import CampaignStore, key_hash, replica_key


def make_grid(*, protocols=(DOUBLE_NBL,), m_values=(600.0,), phi_values=(0.5,),
              replicas=8, work_target=1800.0, n=24, seed=2024,
              **overrides) -> CampaignConfig:
    return CampaignConfig(
        protocols=protocols,
        base_params=scenarios.BASE.parameters(M=600.0, n=n),
        m_values=m_values,
        phi_values=phi_values,
        work_target=work_target,
        replicas=replicas,
        seed=seed,
        **overrides,
    )


def cell_bytes(results) -> list[str]:
    return [repro_io.dump_result(r) for r in results]


class TestEngineSelection:
    def test_plain_cells_vectorize(self):
        config = make_grid()
        plan = plan_cells(config)[0]
        assert cell_engine(config, plan) == "vectorized"
        assert plan_engine("vectorized", config, plan) == "vectorized"
        assert plan_engine("des", config, plan) == "des"

    def test_shared_traces_fall_back(self):
        """Common random numbers need one concrete event interleaving —
        exactly what the renewal closed forms cannot express."""
        config = make_grid(share_traces=True)
        plan = plan_cells(config)[0]
        assert cell_engine(config, plan) == "des"
        assert plan_engine("vectorized", config, plan) == "des"

    def test_make_backend_dispatch(self):
        assert isinstance(make_backend(1, "vectorized"), VectorizedBackend)
        assert isinstance(make_backend(1, "des"), SerialBackend)
        pooled = make_backend(2, "vectorized")
        assert isinstance(pooled, ProcessPoolBackend)
        assert pooled.engine == "vectorized"
        with pytest.raises(ParameterError, match="unknown backend"):
            make_backend(1, "warp-drive")


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        """Replica bytes are pure functions of the replica key — the
        store's convergent-publish invariant."""
        config = make_grid()
        plan = plan_cells(config)[0]
        a = run_cell_vectorized(config, plan, FixedReplicas(8))
        b = run_cell_vectorized(config, plan, FixedReplicas(8))
        assert cell_bytes(a) == cell_bytes(b)

    def test_replicas_independent_of_batch_shape(self):
        """Replica r's bytes must not depend on how many replicas were
        batched with it (else two campaigns could not share cells)."""
        config = make_grid()
        plan = plan_cells(config)[0]
        few = run_cell_vectorized(config, plan, FixedReplicas(3))
        many = run_cell_vectorized(config, plan, FixedReplicas(8))
        assert cell_bytes(few) == cell_bytes(many)[:3]

    def test_adaptive_controller_truncates_like_scalar(self):
        """The stop cursor replays over the batch: a generous tolerance
        stops after the minimum replica count, like run_cell."""
        config = make_grid(replicas=16)
        plan = plan_cells(config)[0]
        controller = AdaptiveCI(max_replicas=16, tolerance=1e9)
        stopped = run_cell_vectorized(config, plan, controller)
        full = run_cell_vectorized(config, plan, FixedReplicas(16))
        assert len(stopped) < 16
        assert cell_bytes(stopped) == cell_bytes(full)[:len(stopped)]

    def test_infeasible_cell_raises_like_des(self):
        config = make_grid(m_values=(15.0,), n=12, phi_values=(1.0,))
        plan = plan_cells(config)[0]
        with pytest.raises(InfeasibleModelError):
            run_cell_vectorized(config, plan, FixedReplicas(2))
        with pytest.raises(InfeasibleModelError):
            run_cell(config, plan, FixedReplicas(2), {})

    def test_meta_matches_des_vocabulary(self):
        """Reports group on meta keys: the vectorized engine must emit
        the DES vocabulary (plus its engine marker)."""
        config = make_grid()
        plan = plan_cells(config)[0]
        vec = run_cell_vectorized(config, plan, FixedReplicas(2))[0]
        des = run_cell(config, plan, FixedReplicas(2), {})[0]
        assert set(des.meta) | {"engine"} == set(vec.meta)
        for key in ("protocol", "period", "phi", "seed", "n", "M"):
            assert vec.meta[key] == des.meta[key]
        assert vec.meta["engine"] == "vectorized"


class TestFallbackIdentity:
    def test_shared_trace_cells_byte_identical_to_serial(self):
        """A vectorized campaign over a shared-trace grid IS the serial
        campaign — fallback engages per cell and reuses the DES path."""
        config = make_grid(share_traces=True, replicas=3)
        plan = plan_cells(config)[0]
        via_engine = run_cell_for_engine(
            "vectorized", config, plan, FixedReplicas(3), {}
        )
        scalar = run_cell(config, plan, FixedReplicas(3), {})
        assert cell_bytes(via_engine) == cell_bytes(scalar)

    def test_fallback_campaign_file_matches_des_file(self, tmp_path):
        grid = make_grid(share_traces=True, replicas=2, work_target=900.0,
                         n=12, m_values=(600.0,), phi_values=(1.0,))
        a, b = tmp_path / "des.jsonl", tmp_path / "vec.jsonl"
        execute_spec(CampaignSpec(grid=grid, policy=ExecutionPolicy(
            backend="des")), results_path=a)
        execute_spec(CampaignSpec(grid=grid, policy=ExecutionPolicy(
            backend="vectorized")), results_path=b)
        assert a.read_bytes() == b.read_bytes()


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("protocol", ["double-nbl", "double-bof", "triple"])
    def test_waste_within_combined_intervals(self, protocol):
        """Completed-replica waste agrees with the DES within the summed
        95% CIs plus the renewal thinning-bias allowance — the same
        first-order standard ``experiments/validation.py`` holds the
        renewal estimator to."""
        des_cfg = make_grid(protocols=(protocol,), replicas=40)
        vec_cfg = make_grid(protocols=(protocol,), replicas=200)
        des = run_cell(des_cfg, plan_cells(des_cfg)[0], FixedReplicas(40), {})
        vec = run_cell_vectorized(
            vec_cfg, plan_cells(vec_cfg)[0], FixedReplicas(200)
        )
        w_des = np.array([r.waste for r in des])
        w_vec = np.array([r.waste for r in vec])
        mean_des, mean_vec = np.nanmean(w_des), np.nanmean(w_vec)
        # F/M ≈ waste at these cells; 2·(F/M)² bounds the thinning bias.
        bias = 2.0 * float(mean_des) ** 2
        tolerance = ci_half_width(w_des) + ci_half_width(w_vec) + bias
        assert abs(mean_des - mean_vec) <= tolerance

    @pytest.mark.slow
    @pytest.mark.parametrize("protocol", ["double-nbl", "double-bof", "triple"])
    @pytest.mark.parametrize("law", [
        None,
        Weibull(1.0, 0.7),
        LogNormal(1.0, 1.2),
        Gamma(1.0, 2.0),
        Mixture([Weibull(0.5, 0.7), Weibull(5.0, 0.7)], [0.8, 0.2]),
    ], ids=["exponential", "weibull", "lognormal", "gamma", "mixture"])
    def test_waste_equivalence_per_law(self, protocol, law):
        """The nightly matrix: the contract per protocol × failure law
        (the distribution is rescaled per cell, so mean 1.0 here stands
        for 'shape only')."""
        des_cfg = make_grid(protocols=(protocol,), replicas=60,
                            distribution=law)
        vec_cfg = make_grid(protocols=(protocol,), replicas=400,
                            distribution=law)
        des = run_cell(des_cfg, plan_cells(des_cfg)[0], FixedReplicas(60), {})
        vec = run_cell_vectorized(
            vec_cfg, plan_cells(vec_cfg)[0], FixedReplicas(400)
        )
        w_des = np.array([r.waste for r in des])
        w_vec = np.array([r.waste for r in vec])
        mean_des, mean_vec = np.nanmean(w_des), np.nanmean(w_vec)
        bias = 2.0 * float(mean_des) ** 2
        tolerance = ci_half_width(w_des) + ci_half_width(w_vec) + bias
        assert abs(mean_des - mean_vec) <= tolerance
        if law is None:
            # The success channel is only claimed for the exponential
            # platform: the fatality model's rate λ=1/(nM) understates
            # group chains under bursty (heavy-tailed) laws, where the
            # DES sees clustered failures the first-order model omits.
            assert np.mean([r.succeeded for r in des]) > 0.85
            assert np.mean([r.succeeded for r in vec]) > 0.85


class TestSpecAndResume:
    def test_policy_roundtrip_and_default(self):
        policy = ExecutionPolicy(backend="vectorized")
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy
        legacy = dict(policy.to_dict())
        del legacy["backend"]  # pre-backend manifests
        assert ExecutionPolicy.from_dict(legacy).backend == "des"

    def test_unknown_backend_refused_by_name(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            ExecutionPolicy(backend="warp-drive")
        assert "des" in CAMPAIGN_BACKENDS and "vectorized" in CAMPAIGN_BACKENDS

    def test_backend_is_identity_bearing(self):
        """Engines are equivalent, not identical: the backend must land
        in fingerprints so resume/queue joins see a change as drift."""
        grid = make_grid()
        des = CampaignSpec(grid=grid, policy=ExecutionPolicy(backend="des"))
        vec = CampaignSpec(
            grid=grid, policy=ExecutionPolicy(backend="vectorized")
        )
        assert des.fingerprint() != vec.fingerprint()
        assert des.identity() != vec.identity()

    def test_resume_refuses_backend_drift(self, tmp_path):
        grid = make_grid(replicas=2, work_target=900.0, n=12,
                         phi_values=(1.0,))
        path = tmp_path / "results.jsonl"
        Campaign(CampaignSpec(
            grid=grid, policy=ExecutionPolicy(backend="vectorized"),
        )).run(path)
        with pytest.raises(ParameterError, match="manifest"):
            execute_spec(
                CampaignSpec(grid=grid, policy=ExecutionPolicy(backend="des")),
                results_path=path, resume=True,
            )


class TestStoreSeparation:
    def test_engine_key_field(self):
        config = make_grid()
        plan = plan_cells(config)[0]
        des_key = replica_key(config, plan, 0)
        vec_key = replica_key(config, plan, 0, engine="vectorized")
        assert "engine" not in des_key  # existing warehouses stay valid
        assert vec_key["engine"] == "vectorized"
        assert key_hash(des_key) != key_hash(vec_key)
        with pytest.raises(ParameterError, match="unknown engine"):
            replica_key(config, plan, 0, engine="warp-drive")

    def test_engines_never_share_entries(self, tmp_path):
        config = make_grid(replicas=2)
        plan = plan_cells(config)[0]
        store = CampaignStore(tmp_path / "store")
        vec = run_cell_vectorized(config, plan, FixedReplicas(2))
        store.publish_cell(config, plan, vec, engine="vectorized")
        assert store.load_cell(config, plan, FixedReplicas(2)) is None
        hit = store.load_cell(
            config, plan, FixedReplicas(2), engine="vectorized"
        )
        assert cell_bytes(hit) == cell_bytes(vec)

    def test_warm_rerun_serves_every_cell(self, tmp_path):
        """Cold vectorized run publishes; an identical warm run performs
        zero simulations and reproduces the results file byte for byte
        — the store contract, now per engine."""
        grid = make_grid(replicas=2, work_target=900.0, n=12,
                         m_values=(300.0, 600.0), phi_values=(1.0,))
        policy = ExecutionPolicy(
            backend="vectorized", store=str(tmp_path / "store"),
        )
        spec = CampaignSpec(grid=grid, policy=policy)
        cold_path = tmp_path / "cold.jsonl"
        warm_path = tmp_path / "warm.jsonl"
        cold = execute_spec(spec, results_path=cold_path)
        warm = execute_spec(spec, results_path=warm_path)
        assert cold.report.cells_cached == 0
        assert warm.report.cells_cached == len(plan_cells(grid))
        assert warm.report.replicas_run == 0
        assert cold_path.read_bytes() == warm_path.read_bytes()


class TestCli:
    def test_backend_flag_lands_in_spec(self, capsys):
        from repro.cli import main

        assert main([
            "campaign", "--preset", "smoke", "--backend", "vectorized",
            "--dump-spec",
        ]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["policy"]["backend"] == "vectorized"

    def test_spec_file_refuses_backend_flag(self, capsys, tmp_path):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        assert main([
            "campaign", "--preset", "smoke", "--dump-spec",
        ]) == 0
        spec_file.write_text(capsys.readouterr().out)
        rc = main([
            "campaign", "--spec", str(spec_file), "--backend", "vectorized",
        ])
        assert rc == 2
        assert "--backend" in capsys.readouterr().err
