"""Two-level (buddy + global) checkpointing model (§VIII direction)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.core.risk import group_fatal_probability
from repro.core.twolevel import TwoLevelModel
from repro.errors import InfeasibleModelError, ParameterError

DAY = 86400.0


@pytest.fixture
def harsh():
    """High-failure Base platform where fatal events actually matter."""
    return scenarios.BASE.parameters(M=60.0)


def make(spec, params, C=600.0, **kw) -> TwoLevelModel:
    return TwoLevelModel(spec, params, global_cost=C, **kw)


class TestFatalHazard:
    def test_rate_integrates_to_group_probability(self, harsh):
        """λ_fatal·T ≈ (n/g)·p_group(T) — same first-order counting."""
        model = make(DOUBLE_NBL, harsh)
        T = DAY
        rate = model.fatal_rate(0.0)
        p_group = group_fatal_probability(DOUBLE_NBL, harsh, 0.0, T)
        expected = (harsh.n / 2) * p_group
        assert rate * T == pytest.approx(expected, rel=1e-9)

    def test_triple_fatals_much_rarer(self, harsh):
        nbl = make(DOUBLE_NBL, harsh).fatal_mtbf(0.0)
        tri = make(TRIPLE, harsh).fatal_mtbf(0.0)
        assert tri > 100 * nbl

    def test_rate_grows_with_risk_window(self, harsh):
        model = make(DOUBLE_NBL, harsh)
        assert model.fatal_rate(0.0) > model.fatal_rate(4.0)  # θmax vs θmin


class TestGlobalLevel:
    def test_period_template(self, harsh):
        model = make(DOUBLE_NBL, harsh, C=600.0)
        m_fatal = model.fatal_mtbf(0.0)
        expected = math.sqrt(2 * 600.0 * (m_fatal - model.D_g - model.R_g))
        assert model.optimal_global_period(0.0) == pytest.approx(
            expected, rel=1e-9)

    def test_defaults(self, harsh):
        model = make(DOUBLE_NBL, harsh, C=600.0)
        assert model.D_g == harsh.D
        assert model.R_g == 600.0  # read back what was written

    def test_infinite_mtbf_means_no_level2(self):
        # A platform so reliable fatals effectively never happen.
        params = scenarios.BASE.parameters(M=30 * DAY)
        model = make(TRIPLE, params)
        assert model.global_waste(0.0) < 1e-6
        assert model.optimal_global_period(0.0) > 1e6

    def test_level2_saturation_raises(self):
        # M = 1 s: fatal MTBF (n·M²/Risk ≈ 1296 s) below the ~30-min
        # global recovery — stable storage cannot keep up.
        params = scenarios.BASE.parameters(M=1.0)
        model = make(DOUBLE_NBL, params, C=1800.0)
        with pytest.raises(InfeasibleModelError):
            model.optimal_global_period(4.0)


class TestEvaluate:
    def test_composition(self, harsh):
        # phi = 4 keeps level 1 feasible even at M = 60 s (A = D+2R).
        model = make(DOUBLE_NBL, harsh)
        point = model.evaluate(4.0)
        assert point.total_waste == pytest.approx(
            1 - (1 - point.buddy_waste) * (1 - point.global_waste))
        assert 0 < point.useful_fraction < 1

    def test_triple_stack_beats_double_stack_at_low_phi(self):
        """§VIII question: with the same safety net and good overlap, the
        TRIPLE stack wastes less AND invokes level 2 orders of magnitude
        less often."""
        params = scenarios.BASE.parameters(M=600.0)
        phi = 0.4
        p_nbl = make(DOUBLE_NBL, params).evaluate(phi)
        p_tri = make(TRIPLE, params).evaluate(phi)
        assert p_tri.global_waste < 0.1 * p_nbl.global_waste
        assert p_tri.global_period > p_nbl.global_period
        assert p_tri.total_waste < p_nbl.total_waste

    def test_double_stack_can_win_at_full_blocking(self, harsh):
        """At phi = R the ordering flips: TRIPLE's level-1 premium (its
        2phi fault-free cost, Fig. 5's 1.15 ratio) exceeds the level-2
        bill that DOUBLE-NBL pays for its fatal failures."""
        p_nbl = make(DOUBLE_NBL, harsh).evaluate(4.0)
        p_tri = make(TRIPLE, harsh).evaluate(4.0)
        assert p_nbl.global_waste > p_tri.global_waste  # NBL pays level 2...
        assert p_nbl.total_waste < p_tri.total_waste    # ...and still wins

    def test_safety_net_cost_is_modest_for_triple(self):
        params = scenarios.BASE.parameters(M=600.0)
        point = make(TRIPLE, params).evaluate(0.4)
        # The net adds little on top of the buddy waste.
        assert point.total_waste < point.buddy_waste + 0.02

    def test_level1_infeasible_raises(self):
        params = scenarios.BASE.parameters(M=15.0)
        with pytest.raises(InfeasibleModelError):
            make(DOUBLE_NBL, params).evaluate(0.0)

    def test_validation(self, harsh):
        with pytest.raises(ParameterError):
            TwoLevelModel(DOUBLE_NBL, harsh, global_cost=0.0)
        with pytest.raises(ParameterError):
            TwoLevelModel(DOUBLE_NBL, harsh, global_cost=1.0,
                          global_downtime=-1.0)
