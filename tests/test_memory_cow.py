"""Memory accounting (§IV) and the fork/copy-on-write model."""

from __future__ import annotations

import math

import pytest

from repro import DOUBLE_NBL, TRIPLE
from repro.core.cow import CowModel
from repro.core.memory import MemoryBudget, fits_in, peak_bytes, steady_state_bytes
from repro.errors import ParameterError

MB = 10**6


class TestMemoryAccounting:
    def test_steady_state_two_images(self):
        assert steady_state_bytes(DOUBLE_NBL, 512 * MB) == 1024 * MB
        assert steady_state_bytes(TRIPLE, 512 * MB) == 1024 * MB

    def test_paper_claim_equal_footprints(self):
        # §IV: TRIPLE matches the doubles' memory demand.
        for size in (64 * MB, 512 * MB, 4096 * MB):
            assert steady_state_bytes(TRIPLE, size) == steady_state_bytes(
                DOUBLE_NBL, size
            )
            assert peak_bytes(TRIPLE, size) == peak_bytes(DOUBLE_NBL, size)

    def test_cow_shrinks_peak(self):
        full = peak_bytes(TRIPLE, 512 * MB, cow_dirty_fraction=1.0)
        cow = peak_bytes(TRIPLE, 512 * MB, cow_dirty_fraction=0.1)
        assert cow < full
        assert cow == steady_state_bytes(TRIPLE, 512 * MB) + 512 * MB + 51 * MB + MB // 5

    def test_budget(self):
        budget = MemoryBudget(
            capacity_bytes=2 * 1024 * MB,
            checkpoint_bytes=512 * MB,
            cow_dirty_fraction=0.0,
        )
        assert fits_in(TRIPLE, budget)
        assert budget.headroom(TRIPLE) == 2048 * MB - 1536 * MB

    def test_budget_overflow(self):
        budget = MemoryBudget(capacity_bytes=1024 * MB, checkpoint_bytes=512 * MB)
        assert not fits_in(DOUBLE_NBL, budget)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity_bytes=0, checkpoint_bytes=1),
            dict(capacity_bytes=1, checkpoint_bytes=0),
            dict(capacity_bytes=1, checkpoint_bytes=1, cow_dirty_fraction=1.5),
        ],
    )
    def test_budget_validation(self, kwargs):
        with pytest.raises(ParameterError):
            MemoryBudget(**kwargs)

    def test_peak_validation(self):
        with pytest.raises(ParameterError):
            peak_bytes(TRIPLE, -1)
        with pytest.raises(ParameterError):
            peak_bytes(TRIPLE, 1, cow_dirty_fraction=2.0)


class TestCowModel:
    def make(self, **kw) -> CowModel:
        defaults = dict(pages=131072, page_bytes=4096, dirty_rate=1000.0,
                        copy_time=2e-6, interference=0.0, ordering="uniform")
        defaults.update(kw)
        return CowModel(**defaults)

    def test_uniform_duplications(self):
        # E[dup] = rate·θ/2 for uniform ordering.
        model = self.make()
        assert model.duplicated_pages_over(10.0) == pytest.approx(5000.0)

    def test_hot_first_beats_uniform(self):
        # §IV: ordering most-likely-modified first reduces duplication.
        uni = self.make(ordering="uniform")
        hot = self.make(ordering="hot-first")
        assert hot.duplicated_pages_over(10.0) < uni.duplicated_pages_over(10.0)

    def test_cap_at_image_size(self):
        model = self.make(dirty_rate=1e9)
        assert model.duplicated_pages_over(100.0) == model.pages

    def test_outcome_fields(self):
        out = self.make().evaluate(10.0)
        assert out.duplicated_pages == pytest.approx(5000.0)
        assert out.transient_bytes == pytest.approx(5000.0 * 4096)
        assert out.stall_time == pytest.approx(5000.0 * 2e-6)
        assert 0.0 <= out.overhead_fraction <= 1.0

    def test_effective_phi_small_for_fast_network(self):
        # §VI-A: "a very small ratio phi/R can be achieved for large theta".
        model = self.make(dirty_rate=100.0)
        ratio = model.phi_over_r(theta=44.0, R=4.0)
        assert ratio < 0.01

    def test_interference_adds_overhead(self):
        calm = self.make(interference=0.0).evaluate(10.0)
        busy = self.make(interference=0.05).evaluate(10.0)
        assert busy.overhead_fraction > calm.overhead_fraction

    def test_phi_curve_monotone_pages(self):
        model = self.make()
        thetas = [4.0, 8.0, 16.0, 44.0]
        curve = model.phi_curve(thetas, R=4.0)
        assert curve.shape == (4,)
        assert all(0 <= v <= 1 for v in curve)

    def test_upload_duration(self):
        model = self.make()
        assert model.upload_duration(128 * MB) == pytest.approx(
            model.image_bytes / (128 * MB)
        )
        with pytest.raises(ParameterError):
            model.upload_duration(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(pages=0),
            dict(page_bytes=0),
            dict(dirty_rate=-1.0),
            dict(copy_time=-1.0),
            dict(interference=1.0),
            dict(ordering="random"),
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(pages=10, page_bytes=4096)
        defaults.update(kwargs)
        with pytest.raises(ParameterError):
            CowModel(**defaults)

    def test_zero_theta(self):
        out = self.make().evaluate(0.0)
        assert out.duplicated_pages == 0.0
        assert out.overhead_fraction == 0.0
        with pytest.raises(ParameterError):
            self.make().duplicated_pages_over(-1.0)
