"""Shared fixtures: paper scenarios at reference MTBFs, protocol sets."""

from __future__ import annotations

import pytest

from repro import (
    DOUBLE_BLOCKING,
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    Parameters,
    scenarios,
)

#: All five buddy protocol specs.
ALL_PROTOCOLS = (DOUBLE_BLOCKING, DOUBLE_NBL, DOUBLE_BOF, TRIPLE, TRIPLE_BOF)

#: The three protocols the paper's figures evaluate.
FIGURE_PROTOCOLS = (DOUBLE_BOF, DOUBLE_NBL, TRIPLE)


@pytest.fixture
def base_7h() -> Parameters:
    """Base scenario at the Fig. 5 reference MTBF (7 hours)."""
    return scenarios.BASE.parameters(M="7h")


@pytest.fixture
def exa_7h() -> Parameters:
    """Exa scenario at the Fig. 8 reference MTBF (7 hours)."""
    return scenarios.EXA.parameters(M="7h")


@pytest.fixture
def base_1min() -> Parameters:
    """Base scenario in the high-failure regime used by the risk figures."""
    return scenarios.BASE.parameters(M="1min")


@pytest.fixture(params=ALL_PROTOCOLS, ids=lambda s: s.key)
def any_protocol(request):
    """Parametrised over every buddy protocol spec."""
    return request.param


@pytest.fixture(params=FIGURE_PROTOCOLS, ids=lambda s: s.key)
def figure_protocol(request):
    """Parametrised over the three protocols evaluated in §VI."""
    return request.param
