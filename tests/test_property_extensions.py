"""Property-based tests for the extension modules (exact, kbuddy, pareto)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import DOUBLE_NBL, Parameters, optimal_period, waste
from repro.analysis.pareto import OperatingPoint, pareto_front
from repro.core.exact import optimal_period_renewal, waste_gap, waste_renewal
from repro.core.kbuddy import KBuddyModel

platforms = st.builds(
    Parameters,
    D=st.floats(min_value=0.0, max_value=120.0),
    delta=st.floats(min_value=0.1, max_value=60.0),
    R=st.floats(min_value=0.5, max_value=120.0),
    alpha=st.floats(min_value=0.0, max_value=50.0),
    M=st.floats(min_value=60.0, max_value=10 * 86400.0),
    n=st.integers(min_value=1, max_value=10**5).map(lambda k: 12 * k),
)
fractions = st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=100)
@given(params=platforms, f=fractions, p_scale=st.floats(min_value=1.0, max_value=30.0))
def test_renewal_waste_is_fraction_and_below_paper(params, f, p_scale):
    """Renewal form ∈ [0,1] and never exceeds the paper's waste."""
    phi = f * params.R
    p_min = float(np.asarray(DOUBLE_NBL.min_period(params, phi)))
    P = p_scale * p_min
    w_renew = waste_renewal(DOUBLE_NBL, params, phi, P)
    w_paper = waste(DOUBLE_NBL, params, phi, P)
    assert 0.0 <= w_renew <= 1.0
    assert w_renew <= w_paper + 1e-12


@settings(max_examples=100)
@given(params=platforms, f=fractions)
def test_renewal_gap_shrinks_with_m(params, f):
    """The O((F/M)²) gap decreases when the platform gets more reliable."""
    phi = f * params.R
    P = 4.0 * float(np.asarray(DOUBLE_NBL.min_period(params, phi)))
    g1 = waste_gap(DOUBLE_NBL, params, phi, P)
    g2 = waste_gap(DOUBLE_NBL, params.with_updates(M=params.M * 10), phi, P)
    if np.isnan(g1) or np.isnan(g2):
        return
    assert g2 <= g1 + 1e-12


@settings(max_examples=100)
@given(params=platforms, f=st.floats(min_value=0.05, max_value=1.0))
def test_renewal_optimum_exceeds_paper_optimum(params, f):
    phi = f * params.R
    p_paper = optimal_period(DOUBLE_NBL, params, phi)
    p_renew = optimal_period_renewal(DOUBLE_NBL, params, phi)
    if not np.isfinite(p_paper):
        return
    assert p_renew >= p_paper - 1e-9


@settings(max_examples=80)
@given(
    params=platforms,
    f=fractions,
    t_days=st.floats(min_value=0.1, max_value=60.0),
    k=st.sampled_from([2, 3, 4, 6]),
)
def test_kbuddy_success_monotone_in_k(params, f, t_days, k):
    """More buddies never hurt the success probability — within the
    model's validity domain.

    The group-fatal formula is the paper-style first-order asymptotic
    ``k!·λᵏ·T·Riskᵏ⁻¹``, whose expansion parameter is ``λ·Risk``.  The
    k-ordering is a theorem of the model only where that parameter is
    small; once a platform is failure-dominated enough that ``λ·Risk``
    is O(1), the formula saturates toward its [0, 1] clip and a clipped
    k+1 term can undershoot an unclipped k term — not a property of
    k-buddying, just the asymptotics leaving their domain.  Such draws
    are filtered; the probability-bounds check still applies everywhere.
    """
    phi = f * params.R
    T = t_days * 86400.0
    k_next = k + 2 if k == 4 else k + 1
    model_k, model_next = KBuddyModel(k), KBuddyModel(k_next)
    p_k = model_k.success_probability(params, phi, T)
    assert 0.0 <= p_k <= 1.0
    if params.n % k_next != 0:
        return
    risk_next = float(np.asarray(model_next.risk_window(params, phi)))
    assume(params.lam * risk_next <= 0.02)
    p_k1 = model_next.success_probability(params, phi, T)
    assert p_k1 >= p_k - 1e-12


@settings(max_examples=80)
@given(params=platforms, f=fractions, k=st.sampled_from([2, 3, 4]))
def test_kbuddy_waste_in_bounds(params, f, k):
    phi = f * params.R
    w = KBuddyModel(k).waste_at_optimum(params, phi)
    assert 0.0 <= w <= 1.0


@settings(max_examples=60)
@given(
    data=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0),
                  st.floats(min_value=0.0, max_value=1.0)),
        min_size=1, max_size=40,
    )
)
def test_pareto_front_properties(data):
    """Front members are mutually non-dominating; everything off the
    front is dominated by some front member (or criterion-identical)."""
    points = [
        OperatingPoint("p", 0.0, 100.0, waste=w, fatal_probability=q)
        for w, q in data
    ]
    front = pareto_front(points)
    assert front
    for a in front:
        assert not any(b.dominates(a) for b in front)
    front_keys = {(round(p.waste, 15), round(p.fatal_probability, 15))
                  for p in front}
    for p in points:
        key = (round(p.waste, 15), round(p.fatal_probability, 15))
        if key in front_keys:
            continue
        assert any(q.dominates(p) for q in front)
