"""Platform state machine: deterministic failure scenarios, verified by hand.

These tests drive :class:`PlatformSim` with scripted failure times and check
makespans against closed-form expectations — the ground truth for the DES's
block-insertion semantics.
"""

from __future__ import annotations

import math

import pytest

from repro import DOUBLE_NBL, TRIPLE, Parameters
from repro.errors import SimulationError
from repro.sim.application import Application
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.protocols.base import PlatformSim
from repro.sim.protocols.buddy import BuddySimProtocol
from repro.sim.protocols.coordinated import CoordinatedSimProtocol
from repro.sim.protocols.none import NoCheckpointSimProtocol
from repro.sim.topology import contiguous_groups

PARAMS = Parameters(D=0, delta=2, R=4, alpha=10, M=10_000, n=4)
PHI = 1.0           # θ = 34
PERIOD = 100.0      # phases: 2 / 34 / 64, W = 97
THETA = 34.0
NEVER = 1e15


class ScriptedInjector:
    """Failure process with explicit per-node failure schedules."""

    def __init__(self, n_nodes: int, schedules: dict[int, list[float]]):
        self.n_nodes = n_nodes
        # Convert absolute times to successive inter-arrival delays.
        self._delays = {}
        for node, times in schedules.items():
            prev, delays = 0.0, []
            for t in times:
                delays.append(t - prev)
                prev = t
            self._delays[node] = delays

    def next_failure_delay(self, node: int) -> float:
        queue = self._delays.get(node, [])
        return queue.pop(0) if queue else NEVER


def run_platform(spec, work, schedules, n=None, phi=PHI, period=PERIOD,
                 params=PARAMS, until=1e9):
    if n is None:
        n = 6 if spec.group_size == 3 else 4
    protocol = BuddySimProtocol(spec, params, phi, period)
    cluster = Cluster(contiguous_groups(n, spec.group_size))
    injector = ScriptedInjector(n, schedules)
    app = Application(work_target=work)
    engine = Engine()
    sim = PlatformSim(protocol, injector, app, engine, cluster)
    sim.start()
    engine.run(until=until, max_events=100_000)
    status = sim.finalize()
    return status, engine.now, app, sim


class TestFaultFree:
    def test_exact_makespan_double(self):
        # 3 full periods of work (97 each) finish exactly at t = 300.
        status, makespan, app, _ = run_platform(DOUBLE_NBL, 3 * 97.0, {})
        assert status == "completed"
        assert makespan == pytest.approx(300.0)
        assert app.work_done == pytest.approx(291.0)

    def test_completion_mid_compute_phase(self):
        # 97 + 50 work: period 1 (97) + δ + exchange work 33 + 18 at speed 1
        # inside phase 2 ... completion inside the second period.
        status, makespan, app, _ = run_platform(DOUBLE_NBL, 97.0 + 50.0, {})
        assert status == "completed"
        # Second period: phase0 ends t=102 (0 work), phase1 ends t=136
        # (+33), needs 17 more at full speed -> t = 153.
        assert makespan == pytest.approx(153.0)

    def test_completion_mid_exchange_phase(self):
        # Needs 10 work units in the second period's exchange phase:
        # rate 33/34 ⇒ 10/(33/34) seconds after t=102.
        status, makespan, _, _ = run_platform(DOUBLE_NBL, 97.0 + 10.0, {})
        assert makespan == pytest.approx(102.0 + 10.0 * 34.0 / 33.0)

    def test_commits_at_exchange_end(self):
        _, _, app, _ = run_platform(DOUBLE_NBL, 3 * 97.0, {})
        # Commits at t = 36, 136, 236 capture work 0, 97, 194.
        assert app.commits[:3] == [(36.0, 0.0), (136.0, 97.0), (236.0, 194.0)]

    def test_triple_fault_free(self):
        # TRIPLE: phases 34/34/32, W = 98 at phi=1.
        status, makespan, app, _ = run_platform(TRIPLE, 2 * 98.0, {})
        assert status == "completed"
        assert makespan == pytest.approx(200.0)
        # Commit at end of phase 0 (t=34) captures work 0.
        assert app.commits[0] == (34.0, 0.0)


class TestSingleFailure:
    def test_failure_in_compute_phase(self):
        """Failure at t=50 (phase 2, offset 14): block = D+R+θ+offset."""
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [50.0]}
        )
        assert status == "completed"
        block = 0.0 + 4.0 + (THETA + 14.0)  # D + R + re_time(2, 14)
        assert makespan == pytest.approx(300.0 + block)
        assert app.rollbacks == 1
        # Lost work: exchange work 33 + 14 s of compute.
        assert app.work_lost == pytest.approx(33.0 + 14.0)

    def test_failure_during_local_checkpoint(self):
        """Failure at t=101 (period 2, phase 0, offset 1).

        Rollback to commit(t=36) = work 0; block = D+R+re_time(0, 1)
        = 4 + (θ+σ+1) = 4 + 99; all of period 1's work re-executed.
        """
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [101.0]}
        )
        assert status == "completed"
        assert makespan == pytest.approx(300.0 + 4.0 + 34.0 + 64.0 + 1.0)
        assert app.work_lost == pytest.approx(97.0)

    def test_failure_during_exchange(self):
        """Failure at t=110 (period 2, phase 1, offset 8).

        Lost work: period-1 W plus 8s at exchange rate 33/34.
        Block: D+R + re_time(1, 8) = 4 + (θ+σ+δ+8).
        """
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [110.0]}
        )
        assert status == "completed"
        assert makespan == pytest.approx(300.0 + 4.0 + (34 + 64 + 2 + 8))
        assert app.work_lost == pytest.approx(97.0 + 8.0 * 33.0 / 34.0)

    def test_triple_failure_in_second_exchange_cheap(self):
        """TRIPLE failure in phase 1 rolls back only to the new snapshot."""
        status, makespan, app, _ = run_platform(
            TRIPLE, 2 * 98.0, {0: [140.0]}  # period 2, phase 1, offset 6
        )
        assert status == "completed"
        # re_time(1, 6) = θ + 6 = 40; block = D+R+40 = 44.
        assert makespan == pytest.approx(200.0 + 44.0)
        # Lost work: 33 (phase 0 of period 2) ... no — commit at end of
        # phase 0 captured *period-start* work; phase-0 work plus 6 s of
        # phase-1 exchange work is volatile.
        assert app.work_lost == pytest.approx(33.0 + 6.0 * 33.0 / 34.0)

    def test_work_conserved_after_recovery(self):
        _, makespan, app, _ = run_platform(DOUBLE_NBL, 3 * 97.0, {0: [50.0]})
        assert app.work_done == pytest.approx(3 * 97.0)


class TestFatalAndRisk:
    def test_buddy_failure_in_risk_window_fatal(self):
        # Risk = D+R+θ = 38 for NBL at phi=1; second failure 10 s later.
        status, _, _, sim = run_platform(
            DOUBLE_NBL, 10 * 97.0, {0: [50.0], 1: [60.0]}
        )
        assert status == "fatal"
        assert sim.fatal_time == pytest.approx(60.0)
        assert sim.fatal_group == (0, 1)

    def test_buddy_failure_after_window_survives(self):
        status, _, app, _ = run_platform(
            DOUBLE_NBL, 10 * 97.0, {0: [50.0], 1: [50.0 + 39.0]}
        )
        assert status == "completed"
        assert app.rollbacks == 2

    def test_unrelated_node_failure_not_fatal(self):
        status, _, app, _ = run_platform(
            DOUBLE_NBL, 10 * 97.0, {0: [50.0], 2: [55.0]}
        )
        assert status == "completed"
        assert app.rollbacks == 2

    def test_same_node_refailure_restarts_block(self):
        # Node 0 fails at 50 and again at 60 (inside its own block).
        status, makespan, app, _ = run_platform(
            DOUBLE_NBL, 3 * 97.0, {0: [50.0, 60.0]}
        )
        assert status == "completed"
        # Second block replaces the first: ends at 60 + 4 + 48.
        assert makespan == pytest.approx(300.0 + (60.0 + 52.0 - 50.0))
        assert app.rollbacks == 2

    def test_risk_time_recorded(self):
        _, _, _, sim = run_platform(DOUBLE_NBL, 3 * 97.0, {0: [50.0]})
        total_risk = sum(g.risk_time for g in sim.cluster.groups)
        assert total_risk == pytest.approx(38.0)  # D+R+θ at phi=1


class TestBaselines:
    def test_coordinated_failure_never_fatal(self):
        protocol = CoordinatedSimProtocol(
            checkpoint_time=10.0, downtime=0.0, recovery=5.0, period=100.0
        )
        injector = ScriptedInjector(2, {0: [150.0], 1: [152.0]})
        app = Application(work_target=3 * 90.0)
        engine = Engine()
        sim = PlatformSim(protocol, injector, app, engine, cluster=None)
        sim.start()
        engine.run(until=1e9)
        assert sim.finalize() == "completed"
        assert app.rollbacks == 2

    def test_coordinated_block_length(self):
        protocol = CoordinatedSimProtocol(10.0, 0.0, 5.0, 100.0)
        injector = ScriptedInjector(1, {0: [150.0]})  # compute phase, offset 40
        app = Application(work_target=3 * 90.0)
        engine = Engine()
        sim = PlatformSim(protocol, injector, app, engine)
        sim.start()
        engine.run(until=1e9)
        # Fault-free makespan 300; block = D+R+lost(=40) = 45.
        assert engine.now == pytest.approx(345.0)

    def test_no_checkpoint_restarts_from_zero(self):
        protocol = NoCheckpointSimProtocol(downtime=2.0)
        injector = ScriptedInjector(1, {0: [70.0]})
        app = Application(work_target=100.0)
        engine = Engine()
        sim = PlatformSim(protocol, injector, app, engine)
        sim.start()
        engine.run(until=1e9)
        assert sim.finalize() == "completed"
        # Block-insertion semantics: 100s of work + a (2 + 70)-second
        # recovery block that re-executes the 70 lost work units.
        assert engine.now == pytest.approx(100.0 + 2.0 + 70.0)
        assert app.work_lost == pytest.approx(70.0)

    def test_buddy_protocol_requires_cluster(self):
        protocol = BuddySimProtocol(DOUBLE_NBL, PARAMS, PHI, PERIOD)
        with pytest.raises(SimulationError):
            PlatformSim(protocol, ScriptedInjector(4, {}),
                        Application(work_target=1.0), Engine(), cluster=None)


class TestTimeout:
    def test_unfinished_run_times_out(self):
        status, makespan, _, _ = run_platform(DOUBLE_NBL, 1e9, {}, until=5000.0)
        assert status == "timeout"
        assert makespan == pytest.approx(5000.0)
