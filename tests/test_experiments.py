"""Experiment layer: scenarios, figure generators, report rendering, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.errors import ExperimentError, ParameterError
from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, report, table1
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.units import DAY, HOUR, MINUTE


class TestScenarios:
    def test_table1_base_row(self):
        s = scenarios.BASE
        assert (s.D, s.delta, s.R, s.alpha) == (0.0, 2.0, 4.0, 10.0)
        assert s.n == 324 * 32

    def test_table1_exa_row(self):
        s = scenarios.EXA
        assert (s.D, s.delta, s.R, s.alpha) == (60.0, 30.0, 60.0, 10.0)
        assert s.n == 10**6

    def test_parameters_factory(self):
        p = scenarios.BASE.parameters(M="7h")
        assert p.M == 7 * HOUR
        assert p.n == 10368
        p2 = scenarios.BASE.parameters(M=60, n=64)
        assert p2.n == 64

    def test_grids(self):
        s = scenarios.BASE
        assert s.phi_grid(5).tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        m = s.m_grid(9)
        assert m[0] == pytest.approx(15.0)
        assert m[-1] == pytest.approx(DAY)
        mg, tg = s.risk_grids(6, 5)
        assert mg[-1] == pytest.approx(30 * MINUTE)
        assert tg[-1] == pytest.approx(30 * DAY)
        assert mg[0] > 0

    def test_registry(self):
        assert scenarios.get_scenario("base") is scenarios.BASE
        assert scenarios.get_scenario(scenarios.EXA) is scenarios.EXA
        with pytest.raises(ParameterError):
            scenarios.get_scenario("petascale")

    def test_grid_validation(self):
        with pytest.raises(ParameterError):
            scenarios.BASE.phi_grid(1)


class TestTable1:
    def test_render_contains_values(self):
        text = table1.generate().render()
        assert "base" in text and "exa" in text
        assert "1000000" in text
        assert "0 <= phi <= 60" in text

    def test_csv(self):
        csv = table1.generate().to_csv()
        assert csv.splitlines()[0] == "D,delta,R,alpha,n"


class TestFigureGenerators:
    def test_fig4_panels(self):
        data = fig4.generate(num_phi=7, num_m=9)
        assert [p.protocol for p in data.panels] == [
            "double-bof", "double-nbl", "triple",
        ]
        text = data.render(max_rows=5, max_cols=7)
        assert "fig4" in text and "scale" in text
        csv = data.to_csv()
        assert set(csv) == {"double-bof", "double-nbl", "triple"}

    def test_fig5_series(self):
        data = fig5.generate(num_phi=11)
        assert data.M == pytest.approx(7 * HOUR)
        ratios = data.series["Triple/DoubleNBL"]
        assert ratios[0] == pytest.approx(0.2526, abs=0.001)
        assert "phi/R" in data.render()
        assert data.to_csv().startswith("phi_over_R,")

    def test_fig6_panels(self):
        data = fig6.generate(num_m=5, num_t=4)
        assert len(data.panels) == 3  # caption's two + body-text variant
        keys = set(data.to_csv())
        assert "double-nbl_over_double-bof" in keys
        assert "double-bof_over_triple" in keys
        assert "double-nbl_over_triple" in keys

    def test_fig7_uses_exa(self):
        data = fig7.generate(num_phi=5, num_m=7)
        assert data.scenario == "exa"

    def test_fig8_gain(self):
        data = fig8.generate(num_phi=101)
        tri = data.series["Triple/DoubleNBL"]
        x = data.phi_over_r
        idx = np.argmin(np.abs(x - 0.1))
        assert tri[idx] < 0.80  # ≈25% gain at φ/R = 1/10 (§VI-B)

    def test_fig9_separation_stronger_than_fig6(self):
        """§VI-B: BOF's reliability edge over NBL is larger on Exa.

        Compared at matched M = 60 s with each figure's own horizon
        (30 days for Base, 60 weeks for Exa) — the low-M corner where the
        paper reads off the effect.
        """
        from repro import DOUBLE_BOF, DOUBLE_NBL, success_probability

        def nbl_over_bof(scenario, T):
            params = scenario.parameters(M=60.0)
            p_nbl = success_probability(DOUBLE_NBL, params, 0.0, T)
            p_bof = success_probability(DOUBLE_BOF, params, 0.0, T)
            return p_nbl / p_bof

        r_base = nbl_over_bof(scenarios.BASE, 30 * DAY)
        r_exa = nbl_over_bof(scenarios.EXA, 60 * 7 * DAY)
        assert r_exa < 0.25 * r_base


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "intro", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        }

    def test_run_experiment(self):
        data = run_experiment("fig5", num_phi=5)
        assert data.figure_id == "fig5"

    def test_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestReport:
    def test_ascii_table(self):
        text = report.ascii_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        assert "T" in text and "2.5" in text
        with pytest.raises(ParameterError):
            report.ascii_table(["a"], [[1, 2]])

    def test_heatmap(self):
        grid = np.array([[0.0, 0.5], [1.0, np.nan]])
        text = report.ascii_heatmap(grid, ["r0", "r1"], ["c0", "c1"], title="H")
        assert "?" in text  # NaN marker
        assert "scale" in text
        with pytest.raises(ParameterError):
            report.ascii_heatmap(grid, ["r0"], ["c0", "c1"])

    def test_heatmap_rejects_zero_width_grid(self):
        """Regression: an empty col_labels axis used to escape as an
        IndexError from the legend line instead of a clear refusal."""
        with pytest.raises(ParameterError, match="at least one row"):
            report.ascii_heatmap(np.empty((2, 0)), ["r0", "r1"], [])
        with pytest.raises(ParameterError, match="at least one row"):
            report.ascii_heatmap(np.empty((0, 2)), [], ["c0", "c1"])
        with pytest.raises(ParameterError, match="at least one row"):
            report.ascii_heatmap(np.empty((0, 0)), [], [])

    def test_campaign_report_empty_valid_prefix(self, tmp_path):
        """A campaign file whose valid prefix is empty gets an actionable
        message, not a bare 'no records'."""
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ParameterError, match="no intact campaign"):
            report.campaign_report(empty)
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"format": "repro-resu')  # torn first write
        with pytest.raises(ParameterError, match="torn first write"):
            report.campaign_report(torn)

    def test_series_csv(self):
        csv = report.series_csv({"x": np.array([1.0, 2.0]), "y": np.array([3.0, 4.0])})
        assert csv.splitlines() == ["x,y", "1,3", "2,4"]
        with pytest.raises(ParameterError):
            report.series_csv({"x": np.array([1.0]), "y": np.array([1.0, 2.0])})
        with pytest.raises(ParameterError):
            report.series_csv({})

    def test_grid_csv(self):
        csv = report.grid_csv(np.eye(2), np.array([1.0, 2.0]),
                              np.array([3.0, 4.0]), value_name="w")
        lines = csv.splitlines()
        assert lines[0] == "row,col,w"
        assert len(lines) == 5
        with pytest.raises(ParameterError):
            report.grid_csv(np.eye(3), np.array([1.0]), np.array([1.0]))

    def test_format_m_axis(self):
        labels = report.format_m_axis(np.array([60.0, 3600.0]))
        assert labels == ["1min", "1h"]

    def test_gnuplot_script(self):
        script = report.gnuplot_surface_script(
            np.eye(3), np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]),
            title="T", xlabel="x", ylabel="y", zlabel="z",
            data_file="d.csv", log_x=True,
        )
        assert "splot 'd.csv'" in script
        assert "set dgrid3d 3,3" in script
        assert "set logscale x" in script
        with pytest.raises(ParameterError):
            report.gnuplot_surface_script(
                np.eye(2), np.array([1.0]), np.array([1.0]),
                title="T", xlabel="x", ylabel="y", zlabel="z",
                data_file="d.csv",
            )

    def test_figures_emit_gnuplot(self):
        surf = fig4.generate(num_phi=5, num_m=5)
        scripts = surf.to_gnuplot()
        assert set(scripts) == {"double-bof", "double-nbl", "triple"}
        assert all("splot" in s for s in scripts.values())
        risk = fig6.generate(num_m=3, num_t=3)
        assert len(risk.to_gnuplot()) == 3
