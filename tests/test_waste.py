"""Waste evaluation (Eqs. 1–5) and execution-time conversion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, Parameters, scenarios, waste
from repro.core.waste import (
    execution_time,
    waste_at_optimum,
    waste_breakdown,
)
from repro.errors import ParameterError


@pytest.fixture
def base_7h():
    return scenarios.BASE.parameters(M="7h")


class TestWasteValues:
    def test_manual_double_nbl(self, base_7h):
        # phi=0: c=2, A=48, P=300: hand computation of Eq. (4).
        P = 300.0
        F = 48.0 + P / 2
        expected = 1 - (1 - F / 25200.0) * (1 - 2.0 / P)
        assert waste(DOUBLE_NBL, base_7h, 0.0, P) == pytest.approx(expected)

    def test_triple_ff_term_is_2phi(self, base_7h):
        # TRIPLE: WASTEff = 2φ/P (§V-A).
        bd = waste_breakdown(TRIPLE, base_7h, 1.0, 500.0)
        assert float(np.asarray(bd.fault_free)) == pytest.approx(2.0 / 500.0)

    def test_double_ff_term(self, base_7h):
        bd = waste_breakdown(DOUBLE_NBL, base_7h, 1.0, 500.0)
        assert float(np.asarray(bd.fault_free)) == pytest.approx(3.0 / 500.0)

    def test_below_min_period_saturates(self, base_7h):
        # P_min for NBL at phi=1 is 36.
        assert waste(DOUBLE_NBL, base_7h, 1.0, 30.0) == 1.0

    def test_registry_key_accepted(self, base_7h):
        assert waste("double-nbl", base_7h, 1.0, 300.0) == waste(
            DOUBLE_NBL, base_7h, 1.0, 300.0
        )

    def test_m_override_array(self, base_7h):
        ms = np.array([60.0, 600.0, 25200.0])
        out = waste(DOUBLE_NBL, base_7h, 1.0, 300.0, M=ms)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)  # waste decreases with MTBF

    def test_rejects_nonpositive_m(self, base_7h):
        with pytest.raises(ParameterError):
            waste(DOUBLE_NBL, base_7h, 1.0, 300.0, M=0.0)


class TestBreakdownConsistency:
    @given(
        phi=st.floats(min_value=0.0, max_value=4.0),
        P=st.floats(min_value=50.0, max_value=5000.0),
    )
    @settings(max_examples=60)
    def test_eq5_composition(self, phi, P):
        params = scenarios.BASE.parameters(M="7h")
        bd = waste_breakdown(DOUBLE_NBL, params, phi, P)
        wff = float(np.asarray(bd.fault_free))
        wf = float(np.asarray(bd.failure))
        total = float(np.asarray(bd.total))
        if P < 2.0 + 4.0 + 10 * (4.0 - phi):  # below P_min
            assert total == 1.0
        elif wff < 1 and wf < 1:
            assert total == pytest.approx(wff + wf - wff * wf)


class TestWasteAtOptimum:
    def test_matches_paper_fig5_anchor(self, base_7h):
        # Verified by hand in DESIGN.md: waste_nbl(phi=0) ≈ 0.01445.
        w = float(np.asarray(waste_at_optimum(DOUBLE_NBL, base_7h, 0.0).total))
        assert w == pytest.approx(0.014452, abs=2e-6)

    def test_infeasible_mtbf(self):
        params = scenarios.BASE.parameters(M=15)
        bd = waste_at_optimum(DOUBLE_NBL, params, 0.0)
        assert float(np.asarray(bd.total)) == 1.0
        assert np.isnan(float(np.asarray(bd.period)))

    def test_grid_broadcast(self, base_7h):
        phis = np.linspace(0, 4, 5)[None, :]
        ms = np.logspace(1, 5, 7)[:, None]
        bd = waste_at_optimum(DOUBLE_NBL, base_7h, phis, M=ms)
        assert np.asarray(bd.total).shape == (7, 5)

    def test_waste_decreases_with_m(self, base_7h, figure_protocol):
        ms = np.logspace(2, 5, 30)
        w = np.asarray(waste_at_optimum(figure_protocol, base_7h, 1.0, M=ms).total)
        assert np.all(np.diff(w) <= 1e-12)

    def test_optimum_no_worse_than_fixed_periods(self, base_7h, figure_protocol):
        w_opt = float(np.asarray(waste_at_optimum(figure_protocol, base_7h, 1.0).total))
        for P in (100.0, 300.0, 600.0, 2000.0):
            assert w_opt <= waste(figure_protocol, base_7h, 1.0, P) + 1e-12


class TestExecutionTime:
    def test_eq3(self, base_7h):
        t = execution_time(DOUBLE_NBL, base_7h, 0.0, t_base=1e6, P=300.0)
        w = waste(DOUBLE_NBL, base_7h, 0.0, 300.0)
        assert t == pytest.approx(1e6 / (1.0 - w))

    def test_uses_optimum_by_default(self, base_7h):
        t = execution_time(DOUBLE_NBL, base_7h, 0.0, t_base=1e6)
        w = float(np.asarray(waste_at_optimum(DOUBLE_NBL, base_7h, 0.0).total))
        assert t == pytest.approx(1e6 / (1.0 - w))

    def test_saturated_is_infinite(self):
        params = scenarios.BASE.parameters(M=15)
        assert execution_time(DOUBLE_NBL, params, 0.0, t_base=100.0) == np.inf

    def test_rejects_negative_base(self, base_7h):
        with pytest.raises(ParameterError):
            execution_time(DOUBLE_NBL, base_7h, 0.0, t_base=-1.0)


class TestCrossProtocolFacts:
    """Qualitative claims of §VI-A at the model level."""

    def test_bof_never_beats_nbl_on_waste(self, base_7h):
        phis = np.linspace(0, 4, 41)
        w_bof = np.asarray(waste_at_optimum(DOUBLE_BOF, base_7h, phis).total)
        w_nbl = np.asarray(waste_at_optimum(DOUBLE_NBL, base_7h, phis).total)
        assert np.all(w_bof >= w_nbl - 1e-12)

    def test_triple_wins_at_low_phi(self, base_7h):
        w_tri = float(np.asarray(waste_at_optimum(TRIPLE, base_7h, 0.4).total))
        w_nbl = float(np.asarray(waste_at_optimum(DOUBLE_NBL, base_7h, 0.4).total))
        assert w_tri < 0.75 * w_nbl  # "much smaller waste" for phi/R <= 0.5

    def test_triple_overhead_bounded_at_phi_r(self, base_7h):
        # §VI-A: "limited to 15% more waste in the worst case".
        w_tri = float(np.asarray(waste_at_optimum(TRIPLE, base_7h, 4.0).total))
        w_nbl = float(np.asarray(waste_at_optimum(DOUBLE_NBL, base_7h, 4.0).total))
        assert w_tri / w_nbl < 1.16
