"""Young/Daly centralised comparators and their waste model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.comparators import (
    centralized_optimal_period,
    centralized_waste,
    centralized_waste_at_optimum,
    daly_period,
    young_period,
)
from repro.errors import ParameterError


class TestFormulas:
    def test_young(self):
        # T = sqrt(2MC) + C.
        assert young_period(C=600.0, M=86400.0) == pytest.approx(
            np.sqrt(2 * 86400 * 600) + 600
        )

    def test_daly(self):
        assert daly_period(C=600.0, M=86400.0, D=60.0, R=600.0) == pytest.approx(
            np.sqrt(2 * (86400 + 60 + 600) * 600) + 600
        )

    def test_daly_reduces_to_young(self):
        assert daly_period(600.0, 86400.0, 0.0, 0.0) == young_period(600.0, 86400.0)

    def test_vectorised(self):
        ms = np.array([3600.0, 86400.0])
        out = young_period(600.0, ms)
        assert out.shape == (2,) and out[0] < out[1]

    @pytest.mark.parametrize("bad", [dict(C=0.0, M=1.0), dict(C=1.0, M=0.0)])
    def test_validation(self, bad):
        with pytest.raises(ParameterError):
            young_period(**bad)
        with pytest.raises(ParameterError):
            daly_period(**bad)

    def test_daly_rejects_negative_dr(self):
        with pytest.raises(ParameterError):
            daly_period(1.0, 1.0, D=-1.0)


class TestCentralizedWaste:
    def test_template_optimum_close_to_young(self):
        # sqrt(2C(M−A)) vs sqrt(2MC)+C agree to ~C/P relative order.
        C, M = 600.0, 7 * 86400.0
        p_template = centralized_optimal_period(C, M)
        p_young = young_period(C, M)
        assert p_template == pytest.approx(p_young, rel=0.05)

    def test_waste_at_optimum_beats_neighbours(self):
        C, M, D, R = 600.0, 86400.0, 60.0, 600.0
        p_opt = centralized_optimal_period(C, M, D, R)
        w_opt = centralized_waste(C, M, p_opt, D, R)
        for f in (0.5, 0.8, 1.25, 2.0):
            assert w_opt <= centralized_waste(C, M, p_opt * f, D, R) + 1e-12
        assert w_opt == pytest.approx(centralized_waste_at_optimum(C, M, D, R))

    def test_period_below_c_saturates(self):
        assert centralized_waste(600.0, 86400.0, 500.0) == 1.0

    def test_buddy_vs_centralized_headline(self):
        """The paper's motivation: per-node δ ≪ global C ⇒ far less waste."""
        from repro import DOUBLE_NBL, scenarios
        from repro.core.waste import waste_at_optimum

        params = scenarios.BASE.parameters(M=600.0)
        w_buddy = float(np.asarray(waste_at_optimum(DOUBLE_NBL, params, 1.0).total))
        # Dumping 10368 nodes x 512MB through shared storage: C ~ 10 min.
        w_central = centralized_waste_at_optimum(C=600.0, M=600.0, D=0.0, R=600.0)
        assert w_buddy < 0.3
        assert w_central == 1.0  # cannot even sustain one failure per 10 min

    def test_infeasible(self):
        assert centralized_waste_at_optimum(C=600.0, M=300.0, D=0.0, R=400.0) == 1.0
