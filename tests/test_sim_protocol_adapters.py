"""SimProtocol adapters: phase plans, rates, recovery parameters."""

from __future__ import annotations

import math

import pytest

from repro import DOUBLE_BLOCKING, DOUBLE_BOF, DOUBLE_NBL, TRIPLE, Parameters
from repro.errors import ParameterError, SimulationError
from repro.sim.protocols.base import PhasePlan
from repro.sim.protocols.buddy import BuddySimProtocol
from repro.sim.protocols.coordinated import CoordinatedSimProtocol
from repro.sim.protocols.none import NoCheckpointSimProtocol

PARAMS = Parameters(D=0, delta=2, R=4, alpha=10, M=10_000, n=4)


class TestBuddyAdapter:
    def test_double_nbl_plan(self):
        proto = BuddySimProtocol(DOUBLE_NBL, PARAMS, phi=1.0, period=100.0)
        plan = proto.phase_plan()
        assert [p.name for p in plan] == ["local-checkpoint", "exchange", "compute"]
        assert [p.length for p in plan] == [2.0, 34.0, 64.0]
        assert plan[0].rate == 0.0
        assert plan[1].rate == pytest.approx(33.0 / 34.0)
        assert plan[2].rate == 1.0

    def test_triple_plan(self):
        proto = BuddySimProtocol(TRIPLE, PARAMS, phi=1.0, period=100.0)
        plan = proto.phase_plan()
        assert [p.name for p in plan] == ["exchange", "exchange", "compute"]
        assert [p.length for p in plan] == [34.0, 34.0, 32.0]

    def test_blocking_double_exchange_rate_zero(self):
        proto = BuddySimProtocol(DOUBLE_BLOCKING, PARAMS, phi=0.0, period=100.0)
        plan = proto.phase_plan()
        assert plan[1].rate == 0.0  # φ pinned to θmin ⇒ no overlap at all
        assert plan[1].length == 4.0

    def test_recovery_and_risk(self):
        nbl = BuddySimProtocol(DOUBLE_NBL, PARAMS, phi=1.0, period=100.0)
        bof = BuddySimProtocol(DOUBLE_BOF, PARAMS, phi=1.0, period=100.0)
        assert nbl.recovery_stall() == pytest.approx(4.0)       # D + R
        assert bof.recovery_stall() == pytest.approx(8.0)       # D + 2R
        assert nbl.risk_duration() == pytest.approx(38.0)       # D + R + θ
        assert bof.risk_duration() == pytest.approx(8.0)        # D + 2R

    def test_re_exec_scalar(self):
        proto = BuddySimProtocol(DOUBLE_NBL, PARAMS, phi=1.0, period=100.0)
        assert proto.re_exec_time(2, 14.0, 0.0) == pytest.approx(48.0)

    def test_rejects_period_below_min(self):
        with pytest.raises(ParameterError):
            BuddySimProtocol(DOUBLE_NBL, PARAMS, phi=1.0, period=20.0)

    def test_group_size_forwarded(self):
        assert BuddySimProtocol(TRIPLE, PARAMS, 1.0, 100.0).group_size == 3


class TestCoordinatedAdapter:
    def test_plan(self):
        proto = CoordinatedSimProtocol(10.0, 5.0, 20.0, 100.0)
        plan = proto.phase_plan()
        assert plan == (
            PhasePlan("global-checkpoint", 10.0, 0.0),
            PhasePlan("compute", 90.0, 1.0),
        )
        assert proto.commit_phase() == 0
        assert proto.recovery_stall() == 25.0
        assert proto.risk_duration() is None

    def test_re_exec(self):
        proto = CoordinatedSimProtocol(10.0, 5.0, 20.0, 100.0)
        assert proto.re_exec_time(1, 30.0, lost_work=30.0) == 30.0
        assert proto.re_exec_time(0, 4.0, lost_work=90.0) == 94.0

    @pytest.mark.parametrize(
        "args",
        [(0.0, 0, 0, 10.0), (10.0, -1, 0, 20.0), (10.0, 0, -1, 20.0), (10.0, 0, 0, 5.0)],
    )
    def test_validation(self, args):
        with pytest.raises(ParameterError):
            CoordinatedSimProtocol(*args)


class TestNoCheckpointAdapter:
    def test_plan(self):
        proto = NoCheckpointSimProtocol(downtime=3.0)
        (phase,) = proto.phase_plan()
        assert math.isinf(phase.length)
        assert phase.rate == 1.0
        assert proto.commit_phase() is None
        assert proto.recovery_stall() == 3.0
        assert proto.risk_duration() is None
        assert proto.re_exec_time(0, 123.0, lost_work=55.0) == 55.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            NoCheckpointSimProtocol(downtime=-1.0)


class TestPhasePlanValidation:
    def test_rejects_negative_length(self):
        with pytest.raises(SimulationError):
            PhasePlan("x", -1.0, 0.5)

    def test_rejects_bad_rate(self):
        with pytest.raises(SimulationError):
            PhasePlan("x", 1.0, 1.5)
