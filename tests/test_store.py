"""Content-addressed results store: caching, reuse, retention, queries.

The contract under test, in order of importance:

* **Warm identity** — a re-run of an identical completed spec with a
  store performs *zero* simulations (asserted via a counting backend)
  and writes a results file byte-identical to the cold run's.
* **Partial overlap** — a different grid sharing some cells simulates
  only the missing ones.
* **Controller equivalence** — cache hits flow through the replica
  controllers exactly like live results, so fixed-count and adaptive
  campaigns interoperate through one store.
* **Safety** — corruption is refused loudly, eviction never touches a
  pinned footprint, and concurrent publishers converge race-free.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import ParameterError
from repro.sim.adaptive import AdaptiveCI
from repro.sim.backends import CampaignBackend, SerialBackend
from repro.sim.campaign import CampaignConfig
from repro.sim.executor import execute_spec, plan_cells
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy
from repro.store import (
    CampaignStore,
    cells_from_store,
    key_hash,
    replica_key,
)


def make_spec(*, m_values=(300.0, 600.0), share_traces=False, replicas=2,
              seed=2027, work_target=900.0, policy=None) -> CampaignSpec:
    grid = CampaignConfig(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=m_values,
        phi_values=(1.0,),
        work_target=work_target,
        replicas=replicas,
        seed=seed,
        share_traces=share_traces,
    )
    return CampaignSpec(grid=grid, policy=policy or ExecutionPolicy())


class CountingBackend(CampaignBackend):
    """Serial execution that counts every cell dispatched to it."""

    def __init__(self):
        self.cells_dispatched = 0
        self.inner = SerialBackend()

    def execute(self, config, chunks, controller):
        self.cells_dispatched += sum(len(chunk) for chunk in chunks)
        yield from self.inner.execute(config, chunks, controller)


class TestKeys:
    def test_key_is_grid_position_independent(self):
        """The same physical cell in two different grids (no shared
        traces) keys identically — the cross-campaign reuse premise."""
        a, b = make_spec(m_values=(300.0, 600.0)), make_spec(m_values=(600.0, 1200.0))
        plan_a = next(p for p in plan_cells(a.grid) if p.M == 600.0)
        plan_b = next(p for p in plan_cells(b.grid) if p.M == 600.0)
        assert plan_a.m_index != plan_b.m_index  # different grid rows...
        for r in range(2):
            assert key_hash(replica_key(a.grid, plan_a, r)) \
                == key_hash(replica_key(b.grid, plan_b, r))

    def test_shared_traces_key_by_derived_trace_seed(self):
        """With shared traces the trace seed depends on the grid row, so
        the same (protocol, M) cell at a different row is a *different*
        simulation — the key must refuse to conflate them."""
        a = make_spec(m_values=(300.0, 600.0), share_traces=True)
        b = make_spec(m_values=(600.0, 1200.0), share_traces=True)
        plan_a = next(p for p in plan_cells(a.grid) if p.M == 600.0)
        plan_b = next(p for p in plan_cells(b.grid) if p.M == 600.0)
        assert key_hash(replica_key(a.grid, plan_a, 0)) \
            != key_hash(replica_key(b.grid, plan_b, 0))
        # Same row in an identical grid: same simulation, same key.
        assert key_hash(replica_key(a.grid, plan_a, 0)) \
            == key_hash(replica_key(a.grid, plan_a, 0))

    def test_key_varies_with_what_changes_output(self):
        spec = make_spec()
        plan = plan_cells(spec.grid)[0]
        base = key_hash(replica_key(spec.grid, plan, 0))
        assert key_hash(replica_key(spec.grid, plan, 1)) != base
        assert key_hash(replica_key(
            make_spec(seed=999).grid, plan, 0)) != base
        assert key_hash(replica_key(
            make_spec(work_target=1800.0).grid, plan, 0)) != base
        assert key_hash(replica_key(
            make_spec(share_traces=True).grid, plan, 0)) != base


class TestWarmRerun:
    @pytest.mark.parametrize("sink", ["ordered", "framed"])
    def test_warm_rerun_zero_simulations_byte_identical(self, tmp_path, sink):
        """The acceptance invariant: warm re-run of an identical
        completed spec simulates nothing yet lands byte-identical."""
        spec = make_spec(policy=ExecutionPolicy(sink=sink))
        store = tmp_path / "store"
        cold_backend = CountingBackend()
        cold = execute_spec(spec, results_path=tmp_path / "cold.jsonl",
                            backend=cold_backend, store=store)
        assert cold_backend.cells_dispatched == 4
        assert cold.report.cells_cached == 0

        warm_backend = CountingBackend()
        warm = execute_spec(spec, results_path=tmp_path / "warm.jsonl",
                            backend=warm_backend, store=store)
        assert warm_backend.cells_dispatched == 0
        assert warm.report.cells_run == 0
        assert warm.report.replicas_run == 0
        assert warm.report.cells_cached == 4
        assert (tmp_path / "warm.jsonl").read_bytes() \
            == (tmp_path / "cold.jsonl").read_bytes()
        # The cells object surface is identical too.
        assert [c.summary for c in warm.cells] == \
            [c.summary for c in cold.cells]

    def test_half_overlapping_grid_simulates_only_missing_cells(self, tmp_path):
        store = tmp_path / "store"
        execute_spec(make_spec(m_values=(300.0, 600.0)),
                     results_path=tmp_path / "a.jsonl", store=store)

        backend = CountingBackend()
        overlap = execute_spec(
            make_spec(m_values=(600.0, 1200.0)),
            results_path=tmp_path / "b.jsonl", backend=backend, store=store,
        )
        # 2 protocols × (600 cached, 1200 fresh)
        assert backend.cells_dispatched == 2
        assert overlap.report.cells_cached == 2
        assert overlap.report.cells_run == 2
        # The overlap file equals a storeless run of the same grid.
        execute_spec(make_spec(m_values=(600.0, 1200.0)),
                     results_path=tmp_path / "ref.jsonl")
        assert (tmp_path / "b.jsonl").read_bytes() \
            == (tmp_path / "ref.jsonl").read_bytes()

    def test_shared_trace_campaign_warm_rerun(self, tmp_path):
        """Shared-trace cells cache too (the trace seed is in the key)."""
        spec = make_spec(share_traces=True)
        store = tmp_path / "store"
        execute_spec(spec, results_path=tmp_path / "a.jsonl", store=store)
        backend = CountingBackend()
        warm = execute_spec(spec, results_path=tmp_path / "b.jsonl",
                            backend=backend, store=store)
        assert backend.cells_dispatched == 0
        assert warm.report.cells_cached == 4
        assert (tmp_path / "a.jsonl").read_bytes() \
            == (tmp_path / "b.jsonl").read_bytes()

    def test_store_plus_resume_compose(self, tmp_path):
        """A truncated results file resumes, and the cells it lost are
        served from the store instead of re-simulated."""
        spec = make_spec()
        store = tmp_path / "store"
        path = tmp_path / "c.jsonl"
        execute_spec(spec, results_path=path, store=store)
        full = path.read_bytes()
        lines = full.split(b"\n")
        path.write_bytes(b"\n".join(lines[:2]) + b"\n")  # keep cell 0

        backend = CountingBackend()
        resumed = execute_spec(spec, results_path=path, resume=True,
                               backend=backend, store=store)
        assert backend.cells_dispatched == 0
        assert resumed.report.cells_skipped == 1
        assert resumed.report.cells_cached == 3
        assert path.read_bytes() == full

    def test_facade_and_policy_paths(self, tmp_path):
        """The store reaches the executor through either the policy or
        the run() argument; both are volatile (resume accepts drift)."""
        store = tmp_path / "store"
        spec = make_spec(policy=ExecutionPolicy(
            store=str(store), store_mode="read-write"))
        Campaign(spec).run(tmp_path / "a.jsonl")
        warm = Campaign(make_spec()).run(tmp_path / "b.jsonl", store=store)
        assert warm.report.cells_cached == 4
        # Volatile: resuming the file written with a store, without one.
        resumed = Campaign(make_spec()).resume(tmp_path / "a.jsonl")
        assert resumed.report.cells_skipped == 4


class TestModes:
    def test_read_mode_never_publishes(self, tmp_path):
        store_dir = tmp_path / "store"
        CampaignStore(store_dir)  # an existing (empty) store
        spec = make_spec(policy=ExecutionPolicy(
            store=str(store_dir), store_mode="read"))
        execute_spec(spec, results_path=tmp_path / "a.jsonl")
        assert CampaignStore(store_dir).stat().entries == 0

    def test_read_mode_refuses_a_missing_store(self, tmp_path):
        """Read-only mode can never populate a store, so a missing
        directory is a mistyped path, not a fresh cache."""
        spec = make_spec(policy=ExecutionPolicy(
            store=str(tmp_path / "typo"), store_mode="read"))
        with pytest.raises(ParameterError, match="no results store"):
            execute_spec(spec, results_path=tmp_path / "a.jsonl")

    def test_off_mode_ignores_the_store(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        spec = make_spec(policy=ExecutionPolicy(
            store=str(store_dir), store_mode="off"))
        backend = CountingBackend()
        run = execute_spec(spec, results_path=tmp_path / "b.jsonl",
                           backend=backend)
        assert backend.cells_dispatched == 4
        assert run.report.cells_cached == 0

    def test_unknown_store_mode_refused_at_construction(self):
        with pytest.raises(ParameterError, match="store mode"):
            ExecutionPolicy(store="/tmp/s", store_mode="write")

    def test_store_fields_are_volatile_spec_state(self, tmp_path):
        a = make_spec()
        b = make_spec(policy=ExecutionPolicy(
            store=str(tmp_path / "s"), store_mode="read"))
        assert a != b
        assert a.identity() == b.identity()
        assert a.fingerprint() == b.fingerprint()

    def test_policy_round_trips_with_store_fields(self, tmp_path):
        spec = make_spec(policy=ExecutionPolicy(
            store=str(tmp_path / "s"), store_mode="read"))
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.policy.store == str(tmp_path / "s")
        assert again.policy.store_mode == "read"


class TestControllerInterop:
    def _adaptive(self, replicas=8):
        # Loose tolerance: low-variance cells stop at min_replicas, so
        # the adaptive/fixed asymmetry actually shows in these grids.
        return AdaptiveCI(max_replicas=replicas, tolerance=0.5,
                          min_replicas=3, batch=1)

    def test_fixed_store_serves_adaptive_prefix(self, tmp_path):
        """A fixed-count campaign's entries serve an adaptive campaign:
        the cursor replay stops inside the cached replicas and the file
        equals the adaptive cold run byte-for-byte."""
        store = tmp_path / "store"
        execute_spec(make_spec(replicas=8),
                     results_path=tmp_path / "fixed.jsonl", store=store)

        adaptive = make_spec(replicas=8, policy=ExecutionPolicy(
            sink="framed", controller=self._adaptive()))
        execute_spec(adaptive, results_path=tmp_path / "ref.jsonl")
        backend = CountingBackend()
        warm = execute_spec(adaptive, results_path=tmp_path / "warm.jsonl",
                            backend=backend, store=store)
        assert backend.cells_dispatched == 0
        assert warm.report.cells_cached == 4
        assert (tmp_path / "warm.jsonl").read_bytes() \
            == (tmp_path / "ref.jsonl").read_bytes()

    def test_adaptive_store_misses_for_fixed_budget(self, tmp_path):
        """The reverse is a miss when the adaptive run stored fewer
        replicas than the fixed budget needs — the cell re-runs in full
        rather than serving a short prefix as complete."""
        store = tmp_path / "store"
        adaptive = make_spec(replicas=8, policy=ExecutionPolicy(
            sink="framed", controller=self._adaptive()))
        run = execute_spec(adaptive, results_path=tmp_path / "a.jsonl",
                           store=store)
        short_cells = sum(
            1 for c in run.cells if c.summary.n_replicas < 8
        )
        assert short_cells > 0  # the premise: someone stopped early

        fixed = make_spec(replicas=8)
        backend = CountingBackend()
        warm = execute_spec(fixed, results_path=tmp_path / "b.jsonl",
                            backend=backend, store=store)
        assert backend.cells_dispatched == short_cells
        assert warm.report.cells_cached == 4 - short_cells
        execute_spec(fixed, results_path=tmp_path / "ref.jsonl")
        assert (tmp_path / "b.jsonl").read_bytes() \
            == (tmp_path / "ref.jsonl").read_bytes()


class TestIntegrity:
    def _entry_paths(self, store_dir):
        return sorted((store_dir / "objects").glob("*/*.json"))

    def test_corrupt_entry_is_refused_not_served(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = make_spec()
        execute_spec(spec, results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        victim = self._entry_paths(store_dir)[0]
        victim.write_text("{ not json")
        with pytest.raises(ParameterError, match="corrupt store entry"):
            execute_spec(spec, results_path=tmp_path / "b.jsonl",
                         store=store_dir)

    def test_tampered_payload_fails_verification(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        victim = self._entry_paths(store_dir)[0]
        entry = json.loads(victim.read_text())
        entry["payload"]["payload"]["makespan"] += 1.0
        victim.write_text(json.dumps(entry, sort_keys=True) + "\n")
        report = CampaignStore(store_dir).verify()
        assert not report.ok
        assert len(report.errors) == 1 and "digest" in report.errors[0]

    def test_swapped_entries_are_refused(self, tmp_path):
        """Renaming one valid entry onto another key's address must be
        caught by the full-key comparison on lookup."""
        store_dir = tmp_path / "store"
        spec = make_spec()
        execute_spec(spec, results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        a, b = self._entry_paths(store_dir)[:2]
        payload = a.read_bytes()
        b.write_bytes(payload)
        with pytest.raises(ParameterError, match="does not match"):
            execute_spec(spec, results_path=tmp_path / "b.jsonl",
                         store=store_dir)

    def test_foreign_directory_is_not_a_store(self, tmp_path):
        (tmp_path / "store.json").write_text('{"format": "something"}')
        with pytest.raises(ParameterError, match="foreign"):
            CampaignStore(tmp_path)
        with pytest.raises(ParameterError, match="no results store"):
            CampaignStore(tmp_path / "absent", create=False)


class TestGc:
    def test_lru_eviction_to_byte_budget(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        store = CampaignStore(store_dir)
        before = store.stat()

        # Touch half the entries (a warm lookup) so they are recent.
        spec = make_spec()
        config = spec.config()
        plans = plan_cells(config)
        recent = plans[:2]
        old_paths = []
        for path in (store_dir / "objects").glob("*/*.json"):
            os.utime(path, (1.0, 1.0))  # everything ancient...
            old_paths.append(path)
        recent_hashes = set()
        for plan in recent:
            for r in range(2):
                h = key_hash(replica_key(config, plan, r))
                recent_hashes.add(h)
                os.utime(store_dir / "objects" / h[:2] / f"{h}.json")

        budget = before.total_bytes // 2
        report = store.gc(max_bytes=budget)
        assert report.bytes_after <= budget
        survivors = {e.hash for e in store.entries()}
        # LRU: every survivor is one of the recently-touched entries.
        assert survivors <= recent_hashes

    def test_gc_never_evicts_a_pinned_queue_footprint(self, tmp_path):
        """The satellite invariant: gc --max-bytes must not evict cells
        referenced by an in-progress queue manifest, however small the
        budget."""
        from repro.sim.distributed import ensure_queue, queue_status

        store_dir = tmp_path / "store"
        pinned_spec = make_spec(m_values=(300.0, 600.0))
        other_spec = make_spec(m_values=(1200.0, 2400.0))
        execute_spec(pinned_spec, results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        execute_spec(other_spec, results_path=tmp_path / "b.jsonl",
                     store=store_dir)

        # An in-progress queue for the pinned spec (no worker ran yet).
        queue = tmp_path / "queue"
        queue_spec = make_spec(m_values=(300.0, 600.0), policy=ExecutionPolicy(
            sink="framed", queue=str(queue)))
        ensure_queue(queue, queue_spec.fingerprint(),
                     n_chunks=4, chunk_size=1, n_cells=4)
        assert not queue_status(queue).complete

        store = CampaignStore(store_dir)
        report = store.gc(max_bytes=0, pin_queues=[queue])
        assert report.pinned_entries == 8
        survivors = {e.hash for e in store.entries()}
        config = pinned_spec.config()
        expected = {
            key_hash(replica_key(config, plan, r))
            for plan in plan_cells(config) for r in range(2)
        }
        assert survivors == expected
        # ...and the queue's campaign still resolves entirely from store.
        assert store.coverage(pinned_spec) == (8, 8)

    def test_max_age_and_dry_run(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        store = CampaignStore(store_dir)
        for path in (store_dir / "objects").glob("*/*.json"):
            os.utime(path, (1.0, 1.0))
        dry = store.gc(max_age=3600.0, dry_run=True)
        assert dry.evicted_entries == 8
        assert store.stat().entries == 8  # nothing actually deleted
        wet = store.gc(max_age=3600.0)
        assert wet.evicted_entries == 8
        assert store.stat().entries == 0

    def test_gc_requires_a_budget_shape(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        with pytest.raises(ParameterError, match="max_bytes"):
            store.gc(max_bytes=-1)
        with pytest.raises(ParameterError, match="max_age"):
            store.gc(max_age=0.0)


class TestQueryExportReport:
    def test_query_filters(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        store = CampaignStore(store_dir)
        assert len(list(store.query(protocol="triple"))) == 4
        assert len(list(store.query(protocol="triple", M=300.0))) == 2
        assert len(list(store.query(protocol="nope"))) == 0
        stat = store.stat()
        assert stat.entries == 8
        assert stat.protocols == {"double-nbl": 4, "triple": 4}

    def test_export_matches_framed_run_and_resumes(self, tmp_path):
        store_dir = tmp_path / "store"
        spec_framed = make_spec(policy=ExecutionPolicy(sink="framed"))
        execute_spec(spec_framed, results_path=tmp_path / "ref.jsonl",
                     store=store_dir)
        store = CampaignStore(store_dir)
        out = tmp_path / "export.jsonl"
        report = store.export(spec_framed, out)
        assert (report.cells, report.frames) == (4, 8)
        assert out.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
        # The export carries its manifest and resumes as complete.
        resumed = execute_spec(spec_framed, results_path=out, resume=True)
        assert resumed.report.cells_run == 0
        assert resumed.report.cells_skipped == 4

    def test_export_refuses_missing_cells(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_spec(make_spec(m_values=(300.0,)),
                     results_path=tmp_path / "a.jsonl", store=store_dir)
        store = CampaignStore(store_dir)
        with pytest.raises(ParameterError, match="missing 2 of 4"):
            store.export(make_spec(), tmp_path / "out.jsonl")

    def test_cells_from_store_match_execution_cells(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = make_spec()
        run = execute_spec(spec, results_path=tmp_path / "a.jsonl",
                           store=store_dir)
        cells = cells_from_store(CampaignStore(store_dir), spec)
        assert [c.summary for c in cells] == [c.summary for c in run.cells]

    def test_store_report_matches_campaign_report(self, tmp_path):
        from repro.experiments.report import campaign_report, store_report

        store_dir = tmp_path / "store"
        spec = make_spec()
        execute_spec(spec, results_path=tmp_path / "a.jsonl",
                     store=store_dir)
        from_file = campaign_report(tmp_path / "a.jsonl")
        from_store = store_report(store_dir, spec)
        assert from_file.split("===")[2:] == from_store.split("===")[2:]
        assert "no re-simulation" in from_store


class TestDistributedStore:
    def test_queue_worker_serves_cells_from_store(self, tmp_path):
        """A distributed worker consults the store per claimed cell: the
        queue completes with zero simulations and the merge is
        byte-identical to a storeless framed run."""
        from repro.sim.distributed import merge_shards, queue_status

        store = tmp_path / "store"
        framed = make_spec(policy=ExecutionPolicy(sink="framed"))
        execute_spec(framed, results_path=tmp_path / "ref.jsonl",
                     store=store)

        queue = tmp_path / "queue"
        worker = make_spec(policy=ExecutionPolicy(
            sink="framed", queue=str(queue), worker_id="w1",
            store=str(store), lease_timeout=30.0, poll_interval=0.01))
        execution = execute_spec(worker)
        assert queue_status(queue).complete
        assert execution.report.cells_cached == 4
        assert execution.report.replicas_run == 0
        merged = tmp_path / "merged.jsonl"
        merge_shards(queue, merged)
        assert merged.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()

    def test_queue_plus_store_reads_keep_chunk_layout(self, tmp_path):
        """Store hits must not prune the queue's chunk plan: every chunk
        still gets a ticket and a done marker."""
        from repro.sim.distributed import queue_status

        store = tmp_path / "store"
        execute_spec(make_spec(), results_path=tmp_path / "a.jsonl",
                     store=store)
        queue = tmp_path / "queue"
        worker = make_spec(policy=ExecutionPolicy(
            sink="framed", queue=str(queue), worker_id="w1",
            store=str(store), lease_timeout=30.0, poll_interval=0.01))
        execute_spec(worker)
        status = queue_status(queue)
        assert (status.n_chunks, status.done) == (4, 4)


class TestPooledWorker:
    def test_worker_processes_requires_queue(self):
        with pytest.raises(ParameterError, match="worker_processes"):
            ExecutionPolicy(worker_processes=4)
        with pytest.raises(ParameterError, match="worker_processes"):
            ExecutionPolicy(worker_processes=0)

    def test_workers_with_queue_still_refused(self, tmp_path):
        with pytest.raises(ParameterError, match="worker_processes=N"):
            ExecutionPolicy(workers=4, sink="framed",
                            queue=str(tmp_path / "q"))
        with pytest.raises(ParameterError, match="sink='framed'"):
            ExecutionPolicy(queue=str(tmp_path / "q"), worker_processes=2)

    def test_pooled_policy_round_trips_and_is_volatile(self, tmp_path):
        pooled = ExecutionPolicy(sink="framed", queue=str(tmp_path / "q"),
                                 worker_processes=4)
        spec = make_spec(policy=pooled)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert spec.identity().policy.worker_processes == 1

    @pytest.mark.campaign
    def test_pooled_worker_merge_matches_serial(self, tmp_path):
        from repro.sim.distributed import merge_shards, queue_status

        framed = make_spec(policy=ExecutionPolicy(sink="framed"))
        execute_spec(framed, results_path=tmp_path / "ref.jsonl")
        queue = tmp_path / "queue"
        pooled = make_spec(policy=ExecutionPolicy(
            sink="framed", queue=str(queue), worker_id="w1",
            worker_processes=2, lease_timeout=30.0, poll_interval=0.01))
        execution = execute_spec(pooled)
        assert execution.report.workers == 2
        assert queue_status(queue).complete
        merged = tmp_path / "merged.jsonl"
        merge_shards(queue, merged)
        assert merged.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()


@pytest.mark.campaign
class TestConcurrentAccess:
    """Two independently started OS processes against one store."""

    def _run(self, store, results, seed):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign",
             "--protocols", "double-nbl,triple", "--M", "300,600",
             "--phi", "1.0", "--n", "12", "--work-target", "15min",
             "--replicas", "2", "--seed", str(seed),
             "--store", str(store), "--results", str(results)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def test_two_processes_publish_and_lookup_race_free(self, tmp_path):
        """Both processes run the same grid against one store at once:
        atomic-rename publishing means whatever interleaving happens,
        both results files are byte-identical and every store entry
        survives verification."""
        store = tmp_path / "store"
        procs = [
            self._run(store, tmp_path / f"r{i}.jsonl", seed=2027)
            for i in (1, 2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        a = (tmp_path / "r1.jsonl").read_bytes()
        assert a == (tmp_path / "r2.jsonl").read_bytes()
        report = CampaignStore(store).verify()
        assert report.ok and report.checked == 8
        # A third, sequential run is fully warm.
        proc = self._run(store, tmp_path / "r3.jsonl", seed=2027)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "(4 cells served from it)" in out
        assert (tmp_path / "r3.jsonl").read_bytes() == a
