"""Adaptive replica control: stopping rules, determinism, budget savings.

The controller's contract: never stop before ``min_replicas``, always
stop at ``max_replicas``, stop in between exactly when the mean-waste CI
half-width meets the tolerance at a batch boundary — and decide all of it
purely from the waste samples, so parallel/resumed runs agree
(:func:`repro.sim.adaptive.stop_count` replays decisions bit-for-bit).
"""

from __future__ import annotations

import math

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.errors import ParameterError
from repro.sim.adaptive import (
    AdaptiveCI,
    FixedReplicas,
    ci_half_width,
    stop_count,
)
from repro.sim.campaign import CampaignConfig
from repro.sim.executor import execute_campaign


class TestCiHalfWidth:
    def test_undetermined_until_two_finite_samples(self):
        assert ci_half_width([]) == math.inf
        assert ci_half_width([0.3]) == math.inf
        assert ci_half_width([0.3, float("nan")]) == math.inf

    def test_zero_variance(self):
        assert ci_half_width([0.25, 0.25, 0.25]) == 0.0

    def test_matches_summary_interval(self):
        from repro.sim.results import MonteCarloSummary

        samples = [0.10, 0.14, 0.12, 0.11]
        summary = MonteCarloSummary.from_samples(samples)
        half = (summary.ci_high - summary.ci_low) / 2.0
        assert ci_half_width(samples) == pytest.approx(half)

    def test_nans_excluded_like_summary_mean(self):
        assert ci_half_width([0.1, 0.2, float("nan"), 0.15]) == \
            pytest.approx(ci_half_width([0.1, 0.2, 0.15]))

    def test_shrinks_with_samples(self):
        wide = ci_half_width([0.1, 0.2])
        narrow = ci_half_width([0.1, 0.2, 0.1, 0.2, 0.1, 0.2, 0.1, 0.2])
        assert narrow < wide


class TestFixedReplicas:
    def test_runs_exactly_max(self):
        ctl = FixedReplicas(3)
        assert not ctl.should_stop([0.1])
        assert not ctl.should_stop([0.1, 0.2])
        assert ctl.should_stop([0.1, 0.2, 0.3])
        assert ctl.fingerprint() is None

    def test_rejects_zero(self):
        with pytest.raises(ParameterError, match="max_replicas"):
            FixedReplicas(0)


class TestAdaptiveCI:
    def test_never_stops_before_min(self):
        ctl = AdaptiveCI(max_replicas=10, tolerance=100.0, min_replicas=4)
        assert not ctl.should_stop([0.1])
        assert not ctl.should_stop([0.1, 0.1])
        assert not ctl.should_stop([0.1, 0.1, 0.1])
        assert ctl.should_stop([0.1, 0.1, 0.1, 0.1])

    def test_always_stops_at_max(self):
        ctl = AdaptiveCI(max_replicas=4, tolerance=1e-12)
        spread = [0.0, 1.0, 0.0, 1.0]
        assert ctl.should_stop(spread)  # ceiling, tolerance never met

    def test_checks_only_batch_boundaries(self):
        ctl = AdaptiveCI(
            max_replicas=20, tolerance=100.0, min_replicas=3, batch=4
        )
        tight = [0.1, 0.1, 0.1]
        assert ctl.should_stop(tight)            # n=3: boundary
        assert not ctl.should_stop(tight + [0.1])        # n=4
        assert not ctl.should_stop(tight + [0.1] * 3)    # n=6
        assert ctl.should_stop(tight + [0.1] * 4)        # n=7: boundary

    def test_tolerance_gates_the_stop(self):
        loose = AdaptiveCI(max_replicas=10, tolerance=0.5, min_replicas=3)
        tight = AdaptiveCI(max_replicas=10, tolerance=1e-6, min_replicas=3)
        samples = [0.10, 0.12, 0.11]
        assert ci_half_width(samples) < 0.5
        assert loose.should_stop(samples)
        assert not tight.should_stop(samples)

    def test_all_nan_never_satisfies_tolerance_early(self):
        ctl = AdaptiveCI(max_replicas=6, tolerance=100.0, min_replicas=3)
        nan = float("nan")
        assert not ctl.should_stop([nan, nan, nan])
        assert ctl.should_stop([nan] * 6)  # ceiling still applies

    @pytest.mark.parametrize("bad", [
        dict(max_replicas=0, tolerance=0.1),
        dict(max_replicas=4, tolerance=0.0),
        dict(max_replicas=4, tolerance=float("nan")),
        dict(max_replicas=4, tolerance=0.1, min_replicas=1),
        dict(max_replicas=4, tolerance=0.1, batch=0),
        dict(max_replicas=4, tolerance=0.1, confidence=1.0),
    ], ids=lambda d: [k for k, v in d.items()][-1])
    def test_validation(self, bad):
        with pytest.raises(ParameterError):
            AdaptiveCI(**bad)

    def test_fingerprint_identifies_settings(self):
        a = AdaptiveCI(max_replicas=8, tolerance=0.02)
        b = AdaptiveCI(max_replicas=8, tolerance=0.03)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint()["kind"] == "AdaptiveCI"


class TestStopCount:
    def test_replays_fixed(self):
        assert stop_count(FixedReplicas(3), [0.1, 0.2, 0.3]) == 3
        assert stop_count(FixedReplicas(3), [0.1, 0.2]) is None
        assert stop_count(FixedReplicas(2), [0.1, 0.2, 0.3]) == 2

    def test_replays_adaptive(self):
        ctl = AdaptiveCI(max_replicas=10, tolerance=0.5, min_replicas=3)
        converged = [0.10, 0.12, 0.11, 0.13, 0.12]
        assert stop_count(ctl, converged) == 3  # would have stopped early
        assert stop_count(ctl, converged[:2]) is None  # interrupted


class TestCursor:
    """The incremental cursor must decide exactly like should_stop."""

    SEQUENCES = [
        [0.1, 0.2, 0.3, 0.4, 0.5],
        [0.10, 0.12, 0.11, 0.13, 0.12, 0.11],
        [0.25] * 8,                                   # zero variance
        [float("nan")] * 6,                           # never finite
        [0.1, float("nan"), 0.11, 0.1, float("nan"), 0.12],
        [0.0, 1.0] * 5,                               # never converges
    ]
    RULES = [
        FixedReplicas(4),
        AdaptiveCI(max_replicas=10, tolerance=0.5, min_replicas=3),
        AdaptiveCI(max_replicas=10, tolerance=1e-9, min_replicas=3),
        AdaptiveCI(max_replicas=6, tolerance=0.05, min_replicas=4, batch=3),
        AdaptiveCI(max_replicas=10, tolerance=0.02, min_replicas=2, batch=1),
    ]

    def test_cursor_matches_prefix_replay(self):
        for rule in self.RULES:
            for seq in self.SEQUENCES:
                cursor = rule.cursor()
                for n in range(1, len(seq) + 1):
                    assert cursor.push(seq[n - 1]) == \
                        rule.should_stop(seq[:n]), (rule, seq, n)

    def test_adaptive_cursor_half_width_matches_ci(self):
        """The Welford running half-width is numerically the reference
        ci_half_width (same formula, ulp-level accumulation differences
        at most)."""
        rule = AdaptiveCI(max_replicas=100, tolerance=1e-12, min_replicas=2,
                          batch=1)
        cursor = rule.cursor()
        samples = [0.1 + 0.01 * ((i * 7919) % 13) for i in range(50)]
        for n, s in enumerate(samples, 1):
            cursor.push(s)
            assert cursor._half_width() == \
                pytest.approx(ci_half_width(samples[:n]), rel=1e-12, abs=0.0) \
                or (math.isinf(cursor._half_width())
                    and math.isinf(ci_half_width(samples[:n])))

    def test_replay_is_linear_in_ci_evaluations(self, monkeypatch):
        """stop_count must not recompute the half-width over every prefix:
        one evaluation per batch boundary, each O(1)."""
        from repro.sim import adaptive as adaptive_mod

        calls = {"n": 0}
        original = adaptive_mod._AdaptiveCursor._half_width

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(
            adaptive_mod._AdaptiveCursor, "_half_width", counting
        )
        n = 500
        rule = AdaptiveCI(max_replicas=n + 1, tolerance=1e-30,
                          min_replicas=2, batch=1)
        wastes = [0.1 + (i % 7) * 0.01 for i in range(n)]
        assert stop_count(rule, wastes) is None
        # One O(1) evaluation per boundary — not one per (boundary, prefix).
        assert calls["n"] == n - 1


def adaptive_grid(results_path=None, **overrides) -> CampaignConfig:
    """A grid with a converged low-churn cell (M=3600: few failures)."""
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0, 3600.0),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=8,
        seed=2026,
        share_traces=True,
        results_path=results_path,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


class TestExecutorIntegration:
    TOLERANCE = 0.03

    def controller(self) -> AdaptiveCI:
        return AdaptiveCI(
            max_replicas=8, tolerance=self.TOLERANCE, min_replicas=3, batch=1
        )

    def test_adaptive_spends_fewer_replicas_and_keeps_ci(self):
        """The acceptance criterion: a converged cell stops early, the
        budget shrinks, and every early-stopped cell's CI half-width meets
        the tolerance."""
        fixed = execute_campaign(adaptive_grid(), workers=1)
        adaptive = execute_campaign(
            adaptive_grid(), workers=1, controller=self.controller()
        )
        assert fixed.report.replicas_run == 4 * 8
        assert adaptive.report.replicas_run < fixed.report.replicas_run

        stopped_early = 0
        for cell in adaptive.cells:
            n = len(cell.results)
            if n < 8:
                stopped_early += 1
                half = (cell.summary.ci_high - cell.summary.ci_low) / 2.0
                assert half <= self.TOLERANCE
        assert stopped_early >= 1

    def test_adaptive_prefix_matches_fixed_replicas(self):
        """Early stopping only truncates the replica schedule — the
        replicas that do run are bit-identical to the fixed path's."""
        fixed = execute_campaign(adaptive_grid(), workers=1)
        adaptive = execute_campaign(
            adaptive_grid(), workers=1, controller=self.controller()
        )
        for f_cell, a_cell in zip(fixed.cells, adaptive.cells):
            n = len(a_cell.results)
            assert [repro_io.dump_result(r) for r in a_cell.results] == \
                [repro_io.dump_result(r) for r in f_cell.results[:n]]

    def test_adaptive_is_deterministic(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        execute_campaign(
            adaptive_grid(a), workers=1, sink="framed",
            controller=self.controller(),
        )
        execute_campaign(
            adaptive_grid(b), workers=1, sink="framed",
            controller=self.controller(),
        )
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.campaign
    def test_adaptive_parallel_matches_serial(self, tmp_path):
        serial = execute_campaign(
            adaptive_grid(tmp_path / "s.jsonl"), workers=1, sink="framed",
            controller=self.controller(),
        )
        parallel = execute_campaign(
            adaptive_grid(tmp_path / "p.jsonl"), workers=2, chunk_size=1,
            sink="framed", controller=self.controller(),
        )
        assert [repro_io.dump_result(c.summary) for c in serial.cells] == \
            [repro_io.dump_result(c.summary) for c in parallel.cells]
        assert serial.report.replicas_run == parallel.report.replicas_run

    def test_adaptive_resume_completes_interrupted_cells(self, tmp_path):
        path = tmp_path / "adaptive.jsonl"
        full_exec = execute_campaign(
            adaptive_grid(path), workers=1, sink="framed",
            controller=self.controller(),
        )
        full = path.read_bytes()
        lines = full.split(b"\n")
        path.write_bytes(b"\n".join(lines[:5]) + b"\n")
        resumed = execute_campaign(
            adaptive_grid(path), workers=1, sink="framed", resume=True,
            controller=self.controller(),
        )
        assert path.read_bytes() == full
        assert [repro_io.dump_result(c.summary) for c in resumed.cells] == \
            [repro_io.dump_result(c.summary) for c in full_exec.cells]
