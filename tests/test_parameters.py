"""Parameter bundle validation and derived quantities."""

from __future__ import annotations

import pytest

from repro import Parameters
from repro.errors import ParameterError


class TestConstruction:
    def test_basic(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=25200, n=10368)
        assert p.D == 0.0
        assert p.delta == 2.0
        assert p.R == 4.0
        assert p.M == 25200.0

    def test_accepts_unit_strings(self):
        p = Parameters(D="1min", delta="2s", R="4s", alpha=10, M="7h", n=100)
        assert p.D == 60.0
        assert p.M == 25200.0

    def test_default_n(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600)
        assert p.n == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(D=-1, delta=2, R=4, alpha=10, M=600),
            dict(D=0, delta=-2, R=4, alpha=10, M=600),
            dict(D=0, delta=2, R=0, alpha=10, M=600),
            dict(D=0, delta=2, R=4, alpha=-1, M=600),
            dict(D=0, delta=2, R=4, alpha=10, M=0),
            dict(D=0, delta=2, R=4, alpha=10, M=600, n=1),
            dict(D=0, delta=2, R=4, alpha=10, M=600, n=2.5),
            dict(D=0, delta=2, R=4, alpha="ten", M=600),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            Parameters(**kwargs)

    def test_immutable(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600)
        with pytest.raises(AttributeError):
            p.M = 1200


class TestDerived:
    def test_theta_min_is_r(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600)
        assert p.theta_min == 4.0
        assert p.theta_max == pytest.approx(44.0)

    def test_lambda(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=60, n=10368)
        assert p.lam == pytest.approx(1.0 / (10368 * 60))
        assert p.node_mtbf == pytest.approx(10368 * 60)

    def test_theta_delegates_to_overlap(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600)
        assert p.theta(0.0) == pytest.approx(44.0)
        assert p.phi_for_theta(44.0) == pytest.approx(0.0)


class TestUpdatesAndSerialisation:
    def test_with_updates(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600, n=64)
        q = p.with_updates(M="1h", n=128)
        assert q.M == 3600.0
        assert q.n == 128
        assert p.M == 600.0  # original untouched

    def test_with_updates_rejects_unknown(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600)
        with pytest.raises(ParameterError):
            p.with_updates(bogus=1)

    def test_mapping_roundtrip(self):
        p = Parameters(D=60, delta=30, R=60, alpha=10, M=600, n=10**6)
        q = Parameters.from_mapping(p.to_dict())
        assert q == p

    def test_from_mapping_missing(self):
        with pytest.raises(ParameterError):
            Parameters.from_mapping({"D": 0, "delta": 2})

    def test_from_mapping_unknown(self):
        with pytest.raises(ParameterError):
            Parameters.from_mapping(
                {"D": 0, "delta": 2, "R": 4, "alpha": 10, "M": 600, "x": 1}
            )

    def test_describe(self):
        p = Parameters(D=0, delta=2, R=4, alpha=10, M=600, n=64)
        text = p.describe()
        assert "M=600" in text and "n=64" in text
