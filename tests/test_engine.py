"""Discrete-event engine: ordering, cancellation, budgets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_time_order(self):
        eng = Engine()
        hits = []
        eng.schedule(3.0, lambda e, ev: hits.append("c"))
        eng.schedule(1.0, lambda e, ev: hits.append("a"))
        eng.schedule(2.0, lambda e, ev: hits.append("b"))
        eng.run()
        assert hits == ["a", "b", "c"]
        assert eng.now == 3.0

    def test_fifo_ties(self):
        eng = Engine()
        hits = []
        for tag in "abc":
            eng.schedule(1.0, lambda e, ev, t=tag: hits.append(t))
        eng.run()
        assert hits == ["a", "b", "c"]

    def test_schedule_in(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda e, ev: e.schedule_in(2.0,
                     lambda e2, ev2: seen.append(e2.now)))
        eng.run()
        assert seen == [3.0]

    def test_rejects_past(self):
        eng = Engine()
        eng.schedule(5.0, lambda e, ev: None)
        eng.step()
        with pytest.raises(SimulationError):
            eng.schedule(1.0, lambda e, ev: None)

    def test_rejects_negative_delay(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_in(-1.0, lambda e, ev: None)

    def test_payload_and_kind(self):
        eng = Engine()
        got = []
        eng.schedule(1.0, lambda e, ev: got.append((ev.payload, ev.kind)),
                     payload=42, kind="test")
        eng.run()
        assert got == [(42, "test")]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        hits = []
        ev = eng.schedule(1.0, lambda e, v: hits.append("x"))
        Engine.cancel(ev)
        eng.run()
        assert hits == []

    def test_cancel_from_callback(self):
        eng = Engine()
        hits = []
        later = eng.schedule(2.0, lambda e, v: hits.append("later"))
        eng.schedule(1.0, lambda e, v: Engine.cancel(later))
        eng.run()
        assert hits == []

    def test_pending_counts_live_only(self):
        eng = Engine()
        ev1 = eng.schedule(1.0, lambda e, v: None)
        eng.schedule(2.0, lambda e, v: None)
        Engine.cancel(ev1)
        assert eng.pending() == 1


class TestRunControl:
    def test_until_advances_clock(self):
        eng = Engine()
        eng.schedule(10.0, lambda e, v: None)
        eng.run(until=5.0)
        assert eng.now == 5.0
        assert eng.pending() == 1

    def test_until_executes_boundary(self):
        eng = Engine()
        hits = []
        eng.schedule(5.0, lambda e, v: hits.append(1))
        eng.run(until=5.0)
        assert hits == [1]

    def test_stop(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, lambda e, v: (hits.append(1), e.stop()))
        eng.schedule(2.0, lambda e, v: hits.append(2))
        eng.run()
        assert hits == [1]

    def test_event_budget(self):
        eng = Engine()

        def reschedule(e, v):
            e.schedule_in(1.0, reschedule)

        eng.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_not_reentrant(self):
        eng = Engine()
        errors = []

        def nested(e, v):
            try:
                e.run()
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, nested)
        eng.run()
        assert len(errors) == 1

    def test_executed_counter(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule(t, lambda e, v: None)
        eng.run()
        assert eng.executed == 3

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        ev = eng.schedule(4.0, lambda e, v: None)
        assert eng.peek_time() == 4.0
        Engine.cancel(ev)
        assert eng.peek_time() is None


#: A coarse time grid so random schedules collide often — the interesting
#: case for tie-breaking is many events at the identical timestamp.
_tick = st.sampled_from([0.0, 1.0, 1.5, 2.0, 3.0])


class TestDeterminismProperties:
    """Property-based guarantees the simulators lean on.

    Bit-reproducibility of every DES (and therefore of the parallel
    campaign engine) rests on two engine facts: same-timestamp events fire
    in scheduling order, and cancellation is a safe idempotent no-op.
    """

    @given(times=st.lists(_tick, min_size=1, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_same_timestamp_fires_in_scheduling_order(self, times):
        eng = Engine()
        fired = []
        for i, t in enumerate(times):
            eng.schedule(t, lambda e, ev, i=i: fired.append((ev.time, i)))
        eng.run()
        # Stable sort of (time, scheduling index) == actual firing order.
        assert fired == sorted(
            ((t, i) for i, t in enumerate(times)),
            key=lambda pair: pair[0],
        )

    @given(times=st.lists(_tick, min_size=1, max_size=30), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_cancel_is_safe_and_exact(self, times, data):
        """Cancelling any subset (with repeats) removes exactly that subset."""
        eng = Engine()
        fired = []
        events = [
            eng.schedule(t, lambda e, ev, i=i: fired.append(i))
            for i, t in enumerate(times)
        ]
        doomed = data.draw(st.lists(
            st.integers(0, len(events) - 1), max_size=len(events) * 2
        ))
        for idx in doomed:
            Engine.cancel(events[idx])  # duplicates: idempotent no-op
        eng.run()
        survivors = [i for i in range(len(events)) if i not in set(doomed)]
        assert sorted(fired) == survivors
        assert eng.executed == len(survivors)

    @given(times=st.lists(_tick, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_cancel_after_firing_is_a_noop(self, times):
        eng = Engine()
        events = [eng.schedule(t, lambda e, ev: None) for t in times]
        eng.run()
        executed = eng.executed
        for ev in events:
            Engine.cancel(ev)  # already fired: must not corrupt anything
            Engine.cancel(ev)
        assert eng.executed == executed == len(times)
        assert eng.pending() == 0
        # The engine remains usable after post-hoc cancels.
        eng.schedule(eng.now + 1.0, lambda e, ev: None)
        eng.run()
        assert eng.executed == executed + 1
