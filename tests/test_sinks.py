"""Sink layer: framed out-of-order persistence and its resume guarantees.

The framed sink's contract mirrors the ordered sink's, under weaker
ordering: records may land in any *cell* order, yet resuming from an
arbitrarily truncated file must reproduce exactly what an uninterrupted
run writes, and a file the campaign cannot have written must be refused,
never truncated.  The serial backend completes cells in grid order, so
with ``workers=1`` the framed file is byte-deterministic — which lets the
truncation matrix assert full byte identity, not just record-set
equality.
"""

from __future__ import annotations

import json

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.errors import ParameterError
from repro.sim.adaptive import AdaptiveCI
from repro.sim.campaign import CampaignConfig
from repro.sim.executor import execute_campaign
from repro.sim.sinks import (
    FramedJsonlSink,
    NullSink,
    OrderedJsonlSink,
    make_sink,
)


def make_config(results_path=None, **overrides) -> CampaignConfig:
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0, 600.0, 1200.0),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=4,
        seed=2026,
        share_traces=True,
        results_path=results_path,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


def canonical(cells):
    return [
        (c.protocol, c.M, c.phi, repro_io.dump_result(c.summary),
         tuple(repro_io.dump_result(r) for r in c.results))
        for c in cells
    ]


def record_set(path):
    """The raw runs in a campaign file, as an order-insensitive multiset."""
    return sorted(
        repro_io.dump_result(r) for r in repro_io.iter_campaign_runs(path)
    )


class TestMakeSink:
    def test_modes(self, tmp_path):
        assert isinstance(make_sink("ordered", None), NullSink)
        assert isinstance(make_sink("framed", None), NullSink)
        assert isinstance(
            make_sink("ordered", tmp_path / "a.jsonl"), OrderedJsonlSink
        )
        assert isinstance(
            make_sink("framed", tmp_path / "a.jsonl"), FramedJsonlSink
        )

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="unknown sink mode"):
            make_sink("telepathy", tmp_path / "a.jsonl")

    def test_null_sink_keeps_requested_ordering(self):
        """sink='framed' without a results path must not silently revert
        to grid-order (head-of-line-blocked) on_cell emission."""
        assert make_sink("ordered", None).ordered is True
        assert make_sink("framed", None).ordered is False


class TestFramedWrites:
    def test_same_records_as_ordered(self, tmp_path):
        ordered, framed = tmp_path / "o.jsonl", tmp_path / "f.jsonl"
        execute_campaign(make_config(ordered), workers=1)
        execute_campaign(make_config(framed), workers=1, sink="framed")
        assert record_set(ordered) == record_set(framed)

    def test_frames_carry_contiguous_sequence(self, tmp_path):
        path = tmp_path / "f.jsonl"
        execute_campaign(make_config(path), workers=1, sink="framed")
        frames = [f for f, _ in repro_io.scan_frames(path)]
        assert [f.seq for f in frames] == list(range(len(frames)))
        assert len(frames) == 6 * 4  # 6 cells x 4 replicas
        # Within each cell group, replicas count up from 0.
        by_cell: dict[int, list[int]] = {}
        for f in frames:
            by_cell.setdefault(f.cell, []).append(f.replica)
        assert all(v == list(range(4)) for v in by_cell.values())

    def test_cells_identical_to_ordered_run(self, tmp_path):
        ordered = execute_campaign(make_config(), workers=1)
        framed = execute_campaign(
            make_config(tmp_path / "f.jsonl"), workers=1, sink="framed"
        )
        assert canonical(ordered.cells) == canonical(framed.cells)

    @pytest.mark.campaign
    def test_parallel_framed_matches_serial_record_set(self, tmp_path):
        serial, parallel = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        s = execute_campaign(make_config(serial), workers=1, sink="framed")
        p = execute_campaign(
            make_config(parallel), workers=2, chunk_size=1, sink="framed"
        )
        assert record_set(serial) == record_set(parallel)
        # Cells come back in grid order regardless of completion order.
        assert canonical(s.cells) == canonical(p.cells)


class TestFramedResume:
    """Satellite: truncate at frame boundaries and mid-frame; resumed
    output must equal an uninterrupted run byte for byte."""

    @pytest.fixture()
    def finished(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        execution = execute_campaign(make_config(path), workers=1, sink="framed")
        return path, path.read_bytes(), execution.cells

    #: Cut points: after frame k (boundary) for several k, and mid-frame.
    @pytest.mark.parametrize("frames_kept,extra_bytes", [
        (0, 0),        # empty file
        (1, 0),        # one frame: cell 0 torn after replica 0
        (4, 0),        # exactly one complete cell
        (6, 0),        # one complete cell + half of the next
        (6, 25),       # ... plus a torn fragment of frame 7
        (11, 0),       # three frames short of three complete cells
        (23, 0),       # last frame lost
        (24, 0),       # nothing lost
    ])
    def test_truncation_matrix(self, finished, frames_kept, extra_bytes):
        path, full, cells = finished
        lines = full.split(b"\n")
        kept = b"\n".join(lines[:frames_kept]) + (b"\n" if frames_kept else b"")
        if extra_bytes:
            kept += lines[frames_kept][:extra_bytes]
        path.write_bytes(kept)

        execution = execute_campaign(
            make_config(path), workers=1, sink="framed", resume=True
        )
        assert path.read_bytes() == full
        assert canonical(execution.cells) == canonical(cells)
        expected_skipped = frames_kept // 4  # complete cells survive
        assert execution.report.cells_skipped == expected_skipped
        assert execution.report.cells_run == 6 - expected_skipped

    def test_resume_complete_file_runs_nothing(self, finished):
        path, full, cells = finished
        execution = execute_campaign(
            make_config(path), workers=1, sink="framed", resume=True
        )
        assert execution.report.cells_run == 0
        assert execution.report.cells_skipped == 6
        assert path.read_bytes() == full

    @pytest.mark.campaign
    def test_parallel_resume(self, finished):
        path, full, cells = finished
        path.write_bytes(b"\n".join(full.split(b"\n")[:9]) + b"\n")
        execution = execute_campaign(
            make_config(path), workers=2, chunk_size=1, sink="framed",
            resume=True,
        )
        assert execution.report.cells_skipped == 2
        assert canonical(execution.cells) == canonical(cells)
        assert record_set(path) == sorted(
            repro_io.dump_result(r) for c in cells for r in c.results
        )

    def test_refuses_foreign_grid(self, finished):
        path, full, _ = finished
        other = make_config(path, m_values=(450.0, 900.0, 1800.0))
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(other, workers=1, sink="framed", resume=True)
        assert path.read_bytes() == full

    def test_refuses_changed_seed(self, finished):
        path, full, _ = finished
        with pytest.raises(ParameterError, match="seed"):
            execute_campaign(
                make_config(path, seed=2027), workers=1, sink="framed",
                resume=True,
            )
        assert path.read_bytes() == full

    def test_manifest_refuses_sink_mode_switch(self, finished):
        """An ordered resume over a framed file (or vice versa) is a
        configuration drift the manifest names explicitly."""
        path, full, _ = finished
        with pytest.raises(ParameterError, match="sink"):
            execute_campaign(make_config(path), workers=1, resume=True)
        assert path.read_bytes() == full

    def test_refuses_sequence_gap(self, finished):
        """A frames file with a seq hole was reordered or hand-edited —
        an append can never produce it."""
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()
        lines = full.split(b"\n")
        del lines[2]  # drop one mid-cell frame
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(
                make_config(path), workers=1, sink="framed", resume=True
            )

    def test_refuses_reopened_cell(self, finished):
        """Frames of one cell must be one contiguous group."""
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()
        frames = [
            json.loads(line) for line in full.decode().splitlines()
        ]
        # Move cell 0's last frame behind cell 1's group and renumber seq
        # so the sequence invariant alone cannot catch it.
        frames.append(frames.pop(3))
        for seq, frame in enumerate(frames):
            frame["seq"] = seq
        path.write_text(
            "\n".join(json.dumps(f, sort_keys=True) for f in frames) + "\n"
        )
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(
                make_config(path), workers=1, sink="framed", resume=True
            )

    def test_refuses_unrecognisable_file(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("precious non-campaign content\n")
        with pytest.raises(ParameterError, match="no intact campaign records"):
            execute_campaign(
                make_config(path), workers=1, sink="framed", resume=True
            )
        assert path.read_text() == "precious non-campaign content\n"

    def test_own_file_torn_in_first_frame(self, finished):
        """The campaign's own manifest vouches for a file torn before the
        first frame completed: resume restarts cleanly."""
        path, full, cells = finished
        path.write_bytes(full.split(b"\n")[0][:30])
        execution = execute_campaign(
            make_config(path), workers=1, sink="framed", resume=True
        )
        assert execution.report.cells_skipped == 0
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full


class TestAdaptiveSinkRules:
    def test_adaptive_requires_framed_sink_when_persisted(self, tmp_path):
        controller = AdaptiveCI(max_replicas=4, tolerance=0.05)
        with pytest.raises(ParameterError, match="framed"):
            execute_campaign(
                make_config(tmp_path / "a.jsonl"), workers=1,
                controller=controller,
            )

    def test_adaptive_without_results_is_fine(self):
        controller = AdaptiveCI(max_replicas=4, tolerance=1.0)
        execution = execute_campaign(
            make_config(), workers=1, controller=controller
        )
        assert execution.report.cells_run == 6

    def test_controller_ceiling_must_match_config(self, tmp_path):
        controller = AdaptiveCI(max_replicas=5, tolerance=0.05)
        with pytest.raises(ParameterError, match="max_replicas"):
            execute_campaign(
                make_config(tmp_path / "a.jsonl"), workers=1, sink="framed",
                controller=controller,
            )

    def test_adaptive_resume_refuses_tolerance_drift(self, tmp_path):
        path = tmp_path / "a.jsonl"
        execute_campaign(
            make_config(path), workers=1, sink="framed",
            controller=AdaptiveCI(max_replicas=4, tolerance=0.5),
        )
        with pytest.raises(ParameterError, match="adaptive"):
            execute_campaign(
                make_config(path), workers=1, sink="framed", resume=True,
                controller=AdaptiveCI(max_replicas=4, tolerance=0.05),
            )

    def test_fixed_resume_refuses_adaptive_file_without_manifest(self, tmp_path):
        """Even with the manifest gone, a file holding fewer replicas than
        the fixed controller runs cannot be mistaken for complete cells."""
        path = tmp_path / "a.jsonl"
        execution = execute_campaign(
            make_config(path), workers=1, sink="framed",
            controller=AdaptiveCI(
                max_replicas=4, tolerance=10.0, min_replicas=2, batch=1
            ),
        )
        # The huge tolerance stopped every cell at 2 < 4 replicas.
        assert execution.report.replicas_run == 12
        path.with_name(path.name + ".manifest").unlink()
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(
                make_config(path), workers=1, sink="framed", resume=True
            )
