"""Regenerate the campaign golden files (run from the repo root).

The goldens freeze the *pre-event-pipeline* executor's output bytes
(the PR 7 tree, commit 4d0e591): ``ordered_fixed.jsonl`` (ordered sink,
fixed replicas — the historical byte-prefix format), ``framed_fixed``
and ``framed_adaptive`` (framed sink, fixed / AdaptiveCI control), plus
the spec JSON that produced each.  ``tests/test_events.py`` re-runs the
specs through the event-driven engine and compares bytes — the
refactor's hard constraint is that these files never change.

Deterministic by construction: every replica is a pure function of the
spec (seed schedule ⊕ grid coordinates), so regeneration on any machine
reproduces identical bytes; if this script ever produces a diff, the
engine's output changed and the goldens must NOT be refreshed to paper
over it.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, "src")

from repro.experiments.scenarios import get_campaign_preset  # noqa: E402
from repro.sim.adaptive import AdaptiveCI  # noqa: E402
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy  # noqa: E402

HERE = pathlib.Path(__file__).parent

#: The grids: the smoke preset (2 protocols x 2 MTBFs x 1 phi, 12
#: nodes), replicas raised to 6 for the adaptive case so the stopping
#: rule has room to cut cells short.
GOLDENS: dict[str, CampaignSpec] = {
    "ordered_fixed": get_campaign_preset("smoke").spec(
        replicas=4, policy=ExecutionPolicy()
    ),
    "framed_fixed": get_campaign_preset("smoke").spec(
        replicas=4, policy=ExecutionPolicy(sink="framed")
    ),
    "framed_adaptive": get_campaign_preset("smoke").spec(
        replicas=6,
        policy=ExecutionPolicy(
            sink="framed",
            controller=AdaptiveCI(max_replicas=6, tolerance=0.2),
        ),
    ),
}


def main() -> None:
    for name, spec in GOLDENS.items():
        spec.save(HERE / f"{name}.spec.json")
        out = HERE / f"{name}.jsonl"
        execution = Campaign(spec).run(out)
        (HERE / f"{name}.manifest").write_bytes(
            out.with_name(out.name + ".manifest").read_bytes()
        )
        out.with_name(out.name + ".manifest").unlink()
        print(f"{name}: {execution.report.describe()}")
        print(f"  -> {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
