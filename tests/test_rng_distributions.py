"""RNG streams and failure distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.distributions import (
    Deterministic,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Weibull,
)
from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_reproducible(self):
        a = RngFactory(42).node(3).integers(1 << 40)
        b = RngFactory(42).node(3).integers(1 << 40)
        assert a == b

    def test_streams_differ(self):
        f = RngFactory(42)
        draws = {f.node(i).integers(1 << 40) for i in range(50)}
        assert len(draws) == 50

    def test_domains_do_not_collide(self):
        f = RngFactory(42)
        assert f.node(0).integers(1 << 40) != f.replica(0).integers(1 << 40)

    def test_stream_stability(self):
        # Stream k is identical whether or not other streams exist.
        f1 = RngFactory(7)
        _ = [f1.node(i) for i in range(10)]
        v1 = f1.node(9).integers(1 << 40)
        v2 = RngFactory(7).node(9).integers(1 << 40)
        assert v1 == v2

    def test_replicas_iterator(self):
        f = RngFactory(1)
        gens = list(f.replicas(3))
        assert len(gens) == 3

    def test_child_factory_distinct(self):
        f = RngFactory(5)
        c0, c1 = f.child_factory(0), f.child_factory(1)
        assert c0.node(0).integers(1 << 40) != c1.node(0).integers(1 << 40)

    def test_validation(self):
        with pytest.raises(ParameterError):
            RngFactory(-1)
        with pytest.raises(ParameterError):
            RngFactory(1).node(-2)
        with pytest.raises(ParameterError):
            list(RngFactory(1).replicas(-1))

    def test_none_seed_allowed(self):
        assert RngFactory(None).seed is None


class TestDistributionMeans:
    """Every law hits its requested mean (law of large numbers check)."""

    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(100.0),
            Weibull(100.0, shape=0.7),
            Weibull(100.0, shape=1.5),
            LogNormal(100.0, sigma=1.0),
            Gamma(100.0, shape=2.0),
            Deterministic(100.0),
        ],
        ids=lambda d: type(d).__name__ + str(getattr(d, "shape", "")),
    )
    def test_sample_mean(self, dist):
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(100.0, rel=0.03)
        assert dist.mean() == pytest.approx(100.0)

    def test_samples_positive(self):
        rng = np.random.default_rng(1)
        for dist in (Exponential(10.0), Weibull(10.0, 0.5), LogNormal(10.0, 2.0)):
            assert np.all(dist.sample(rng, size=10_000) > 0)

    def test_weibull_shape1_is_exponential(self):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        w = Weibull(50.0, shape=1.0).sample(rng1, size=100_000)
        e = Exponential(50.0).sample(rng2, size=100_000)
        # Same family ⇒ same quantiles (loose check on the 90th percentile).
        assert np.percentile(w, 90) == pytest.approx(np.percentile(e, 90), rel=0.05)


class TestRescale:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(100.0),
            Weibull(100.0, 0.7),
            LogNormal(100.0, 1.0),
            Gamma(100.0, 2.0),
            Deterministic(100.0),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_rescale_changes_only_mean(self, dist):
        scaled = dist.rescale(500.0)
        assert scaled.mean() == pytest.approx(500.0)
        assert type(scaled) is type(dist)

    def test_empirical_rescale(self):
        emp = Empirical([1.0, 2.0, 3.0])
        scaled = emp.rescale(20.0)
        assert scaled.mean() == pytest.approx(20.0)
        np.testing.assert_allclose(scaled.data, [10.0, 20.0, 30.0])


class TestEmpirical:
    def test_bootstrap_support(self):
        emp = Empirical([5.0, 7.0, 11.0])
        rng = np.random.default_rng(0)
        draws = emp.sample(rng, size=1000)
        assert set(np.unique(draws)) <= {5.0, 7.0, 11.0}

    def test_scalar_draw(self):
        emp = Empirical([5.0])
        assert emp.sample(np.random.default_rng(0)) == 5.0

    def test_data_read_only(self):
        emp = Empirical([1.0, 2.0])
        with pytest.raises(ValueError):
            emp.data[0] = 9.0

    @pytest.mark.parametrize("bad", [[], [0.0], [-1.0], [np.nan]])
    def test_validation(self, bad):
        with pytest.raises(ParameterError):
            Empirical(bad)


class TestMixture:
    """Hyperexponential-style mixtures (heterogeneous-MTBF platforms)."""

    def hyperexp(self) -> Mixture:
        # 20% fragile nodes at 1/4 the fleet MTBF, balanced to mean 100.
        return Mixture(
            [Exponential(25.0), Exponential(118.75)], [0.2, 0.8]
        )

    def test_mean_is_weighted(self):
        assert self.hyperexp().mean() == pytest.approx(100.0)

    def test_sample_mean(self):
        rng = np.random.default_rng(0)
        samples = self.hyperexp().sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(100.0, rel=0.03)
        assert np.all(samples > 0)

    def test_overdispersed_vs_exponential(self):
        """The defining property of heterogeneity: CV > 1."""
        rng = np.random.default_rng(1)
        samples = self.hyperexp().sample(rng, size=200_000)
        cv = samples.std() / samples.mean()
        assert cv > 1.05

    def test_scalar_draw(self):
        value = self.hyperexp().sample(np.random.default_rng(2))
        assert isinstance(value, float) and value > 0

    def test_rescale_preserves_heterogeneity(self):
        scaled = self.hyperexp().rescale(1000.0)
        assert scaled.mean() == pytest.approx(1000.0)
        ratio = scaled.components[1].mean() / scaled.components[0].mean()
        assert ratio == pytest.approx(118.75 / 25.0)

    def test_weights_normalised(self):
        mix = Mixture([Exponential(1.0), Exponential(2.0)], [2.0, 6.0])
        np.testing.assert_allclose(mix.weights, [0.25, 0.75])

    def test_fingerprint_identifies_components(self):
        a = self.hyperexp().fingerprint()
        b = Mixture(
            [Exponential(50.0), Exponential(112.5)], [0.2, 0.8]
        ).fingerprint()
        assert a != b
        assert a["kind"] == "Mixture" and len(a["components"]) == 2

    @pytest.mark.parametrize("comps,weights", [
        ([Exponential(1.0)], [1.0]),                       # one component
        ([Exponential(1.0), Exponential(2.0)], [1.0]),     # count mismatch
        ([Exponential(1.0), Exponential(2.0)], [1.0, 0.0]),  # zero weight
        ([Exponential(1.0), Exponential(2.0)], [1.0, np.nan]),
        ([Exponential(1.0), 2.0], [0.5, 0.5]),             # not a law
    ])
    def test_validation(self, comps, weights):
        with pytest.raises(ParameterError):
            Mixture(comps, weights)


class TestValidation:
    @pytest.mark.parametrize("mean", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_means(self, mean):
        with pytest.raises(ParameterError):
            Exponential(mean)

    def test_bad_shapes(self):
        with pytest.raises(ParameterError):
            Weibull(1.0, 0.0)
        with pytest.raises(ParameterError):
            LogNormal(1.0, 0.0)
        with pytest.raises(ParameterError):
            Gamma(1.0, -2.0)

    def test_deterministic_no_variance(self):
        d = Deterministic(5.0)
        rng = np.random.default_rng(0)
        assert np.all(d.sample(rng, size=10) == 5.0)
        assert d.sample(rng) == 5.0
