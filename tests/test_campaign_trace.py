"""Trace replay (common random numbers) and campaign orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.errors import ParameterError
from repro.io import load_results
from repro.sim.campaign import CampaignCell, CampaignConfig, cells_table, run_campaign
from repro.sim.des import DesConfig, run_des
from repro.sim.failures import FailureInjector, TraceInjector, generate_trace
from repro.sim.rng import RngFactory


class TestTraceInjector:
    def test_replays_exact_times(self):
        inj = TraceInjector(4, [(5.0, 0), (9.0, 2), (12.0, 0)])
        assert inj.next_failure_delay(0) == 5.0
        assert inj.next_failure_delay(0) == 7.0  # 12 − 5
        assert inj.next_failure_delay(2) == 9.0
        assert inj.next_failure_delay(1) == TraceInjector.NEVER
        assert inj.next_failure_delay(0) == TraceInjector.NEVER

    def test_accepts_structured_trace(self):
        real = FailureInjector.from_platform_mtbf(8, 50.0, RngFactory(3))
        trace = generate_trace(real, horizon=500.0)
        inj = TraceInjector(8, trace)
        assert inj.total_events == trace.shape[0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            TraceInjector(0, [])
        with pytest.raises(ParameterError):
            TraceInjector(2, [(1.0, 5)])  # node out of range
        with pytest.raises(ParameterError):
            TraceInjector(2, [(2.0, 0), (1.0, 1)])  # unsorted
        inj = TraceInjector(2, [(1.0, 0)])
        with pytest.raises(ParameterError):
            inj.next_failure_delay(9)

    def test_des_replay_reproduces_run(self):
        """Replaying the trace of a sampled run reproduces its makespan."""
        params = scenarios.BASE.parameters(M=600.0, n=16)
        sampled_cfg = DesConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                                work_target=2 * 3600.0, seed=13)
        sampled = run_des(sampled_cfg)

        factory = RngFactory(13)
        injector = FailureInjector.from_platform_mtbf(16, 600.0, factory)
        trace = generate_trace(injector, horizon=sampled.makespan + 1.0)
        replayed = run_des(DesConfig(
            protocol=DOUBLE_NBL, params=params, phi=1.0,
            work_target=2 * 3600.0, seed=13, trace=trace,
        ))
        assert replayed.makespan == pytest.approx(sampled.makespan)
        assert replayed.failures >= sampled.failures - 1

    def test_common_random_numbers_across_protocols(self):
        """Under an identical trace *and* an identical period, NBL and BOF
        share the failure history; their makespans differ only by the
        recovery-policy deltas (≈ ±(R − φ) + RE drift per failure), far
        less than independent sampling would produce."""
        params = scenarios.BASE.parameters(M=400.0, n=12)
        inj = FailureInjector.from_platform_mtbf(12, 400.0, RngFactory(5))
        trace = generate_trace(inj, horizon=4 * 3600.0 * 10)
        runs = {}
        for spec in (DOUBLE_NBL, DOUBLE_BOF):
            runs[spec.key] = run_des(DesConfig(
                protocol=spec, params=params, phi=1.0, period=120.0,
                work_target=2 * 3600.0, trace=trace, seed=1,
            ))
        nbl, bof = runs["double-nbl"], runs["double-bof"]
        assert nbl.succeeded and bof.succeeded
        assert abs(nbl.failures - bof.failures) <= 2
        assert abs(nbl.makespan - bof.makespan) < 0.15 * nbl.makespan


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return CampaignConfig(
            protocols=(DOUBLE_NBL, TRIPLE),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(600.0, 1200.0),
            phi_values=(0.5, 2.0),
            work_target=1800.0,
            replicas=3,
            seed=2025,
        )

    def test_grid_coverage(self, small_campaign):
        cells = run_campaign(small_campaign)
        assert len(cells) == 2 * 2 * 2  # protocols × M × phi
        keys = {(c.protocol, c.M, c.phi) for c in cells}
        assert ("triple", 1200.0, 0.5) in keys

    def test_cells_have_replicas(self, small_campaign):
        cells = run_campaign(small_campaign)
        assert all(len(c.results) == 3 for c in cells)
        assert all(0.0 <= c.success_rate <= 1.0 for c in cells)

    def test_waste_improves_with_m(self, small_campaign):
        cells = run_campaign(small_campaign)
        by_key = {(c.protocol, c.M, c.phi): c for c in cells}
        for proto in ("double-nbl", "triple"):
            lo = by_key[(proto, 600.0, 0.5)].mean_waste
            hi = by_key[(proto, 1200.0, 0.5)].mean_waste
            assert hi < lo + 0.05  # better MTBF, less (or equal) waste

    def test_persistence(self, tmp_path):
        cfg = CampaignConfig(
            protocols=(DOUBLE_NBL,),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(600.0,),
            phi_values=(1.0,),
            work_target=900.0,
            replicas=2,
            results_path=tmp_path / "campaign.jsonl",
        )
        cells = run_campaign(cfg)
        stored = list(load_results(tmp_path / "campaign.jsonl"))
        assert len(stored) == 2
        assert stored[0].meta["protocol"] == "double-nbl"
        assert cells[0].results[0].makespan == stored[0].makespan

    def test_shared_traces_align_failures(self):
        cfg = CampaignConfig(
            protocols=(DOUBLE_NBL, DOUBLE_BOF),
            base_params=scenarios.BASE.parameters(M=300.0, n=12),
            m_values=(300.0,),
            phi_values=(1.0,),
            work_target=1800.0,
            replicas=2,
            share_traces=True,
            seed=31,
        )
        cells = run_campaign(cfg)
        by_proto = {c.protocol: c for c in cells}
        nbl = by_proto["double-nbl"].results
        bof = by_proto["double-bof"].results
        # Same trace ⇒ at least the first failure strikes both protocols.
        for a, b in zip(nbl, bof):
            if a.succeeded and b.succeeded and a.failures and b.failures:
                assert b.makespan >= a.makespan - 1e-6

    def test_rendering(self, small_campaign):
        cells = run_campaign(small_campaign)
        text = cells_table(cells)
        assert "campaign results" in text and "triple" in text

    @pytest.mark.parametrize(
        "override",
        [
            dict(protocols=()),
            dict(protocols=(DOUBLE_NBL, "double-nbl")),  # duplicate protocol
            dict(m_values=()),
            dict(m_values=(600.0, 600.0)),  # duplicate grid point
            dict(m_values=(float("nan"),)),
            dict(m_values=(-600.0,)),
            dict(m_values=(0.0,)),
            dict(phi_values=()),
            dict(phi_values=(1.0, 1.0)),
            dict(phi_values=(-1.0,)),
            dict(phi_values=(float("inf"),)),
            dict(replicas=0),
            dict(replicas=-3),
            dict(work_target=0.0),
            dict(work_target=float("inf")),
            dict(seed=-1),
            dict(max_time=0.0),
        ],
    )
    def test_validation(self, override):
        base = dict(
            protocols=(DOUBLE_NBL,),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(600.0,),
            phi_values=(1.0,),
            work_target=900.0,
        )
        base.update(override)
        with pytest.raises(ParameterError):
            CampaignConfig(**base)

    def test_numpy_integers_accepted(self, tmp_path):
        """Grid scalars routinely come from numpy; integral numpy types
        must validate and run (seeds are coerced for the RNG)."""
        cfg = CampaignConfig(
            protocols=(DOUBLE_NBL,),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(600.0,),
            phi_values=(1.0,),
            work_target=900.0,
            replicas=np.int64(2),
            seed=np.int64(11),
            results_path=tmp_path / "np.jsonl",
        )
        cells = run_campaign(cfg)
        assert len(cells) == 1 and len(cells[0].results) == 2
        assert cells[0].results[0].meta["seed"] == 11

    def test_run_campaign_revalidates_duck_typed_config(self):
        """Configs built around __post_init__ (object.__new__, stubs...)
        must still fail loudly at execution time, not run a zero-replica
        sweep to an empty answer."""
        config = object.__new__(CampaignConfig)
        for name, value in dict(
            protocols=(DOUBLE_NBL,),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(600.0,),
            phi_values=(1.0,),
            work_target=900.0,
            replicas=0,  # invalid, snuck past construction
            seed=7,
            share_traces=False,
            results_path=None,
            max_time=None,
            distribution=None,
        ).items():
            object.__setattr__(config, name, value)
        with pytest.raises(ParameterError, match="replicas"):
            run_campaign(config)

    def test_campaign_with_failure_distribution(self):
        """The distribution field reaches every injector (incl. traces)."""
        from repro.sim.distributions import Weibull

        cfg = CampaignConfig(
            protocols=(DOUBLE_NBL,),
            base_params=scenarios.BASE.parameters(M=300.0, n=12),
            m_values=(300.0,),
            phi_values=(1.0,),
            work_target=900.0,
            replicas=2,
            share_traces=True,
            distribution=Weibull(1.0, 0.7),
            seed=11,
        )
        cells = run_campaign(cfg)
        assert len(cells) == 1
        exp_cells = run_campaign(
            CampaignConfig(
                protocols=(DOUBLE_NBL,),
                base_params=scenarios.BASE.parameters(M=300.0, n=12),
                m_values=(300.0,),
                phi_values=(1.0,),
                work_target=900.0,
                replicas=2,
                share_traces=True,
                seed=11,
            )
        )
        # A different law must change the sampled failure history.
        weibull_ms = [r.makespan for r in cells[0].results]
        exp_ms = [r.makespan for r in exp_cells[0].results]
        assert weibull_ms != exp_ms
