"""Event pipeline equivalence: the refactor's hard constraint.

The executor was refactored around a typed result-event pipeline
(:mod:`repro.sim.events`): backends produce events, and the JSONL sink,
store publisher, controller replay and progress tracker are independent
consumers on one bus.  The goldens under ``tests/golden/`` freeze the
*pre-refactor* engine's output bytes (commit 4d0e591); these tests prove
the event-driven engine reproduces them exactly — ordered and framed
sinks, fixed and adaptive control, resume from arbitrary truncation,
and distributed shard merge — and pin down the bus contract every
consumer relies on (ordering, single-shot streams, error propagation,
close-exactly-once).
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.errors import ParameterError
from repro.sim.adaptive import FixedReplicas
from repro.sim.events import (
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    CellFinished,
    CellStarted,
    ControllerReplay,
    EventBus,
    EventConsumer,
    ProgressTracker,
    ReplicaBatch,
    SinkWriter,
    StorePublisher,
)
from repro.sim.sinks import make_sink
from repro.sim.spec import Campaign, CampaignSpec

GOLDEN = pathlib.Path(__file__).parent / "golden"
#: Every frozen pre-refactor output: (name, sink kind, control kind).
GOLDEN_NAMES = ("ordered_fixed", "framed_fixed", "framed_adaptive")


def golden(name: str):
    """One golden: (spec, frozen jsonl bytes, frozen manifest bytes)."""
    spec = CampaignSpec.load(GOLDEN / f"{name}.spec.json")
    data = (GOLDEN / f"{name}.jsonl").read_bytes()
    manifest = (GOLDEN / f"{name}.manifest").read_bytes()
    return spec, data, manifest


class Recorder(EventConsumer):
    """A user consumer that keeps the raw stream (and its close calls)."""

    def __init__(self):
        self.events = []
        self.closed = []

    def on_event(self, event):
        self.events.append(event)

    def close(self, error=None):
        self.closed.append(error)


class TestGoldenByteIdentity:
    """Bus-driven execution is byte-identical to the pre-refactor path."""

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_run_reproduces_frozen_bytes(self, name, tmp_path):
        spec, data, manifest = golden(name)
        out = tmp_path / "results.jsonl"
        Campaign(spec).run(out)
        assert out.read_bytes() == data
        assert out.with_name(out.name + ".manifest").read_bytes() \
            == manifest

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_resume_from_arbitrary_truncation(self, name, tmp_path):
        """Cut the frozen file at *any* byte offset — mid-record, on a
        record boundary, empty, or complete — and resume must rebuild
        the exact frozen bytes."""
        spec, data, manifest = golden(name)
        step = max(1, len(data) // 6)
        offsets = sorted({*range(0, len(data), step), len(data) - 1,
                          len(data)})
        for offset in offsets:
            out = tmp_path / f"cut{offset}.jsonl"
            out.write_bytes(data[:offset])
            out.with_name(out.name + ".manifest").write_bytes(manifest)
            execution = Campaign(spec).resume(out)
            assert out.read_bytes() == data, f"diverged at cut {offset}"
            report = execution.report
            assert report.cells_total \
                == report.cells_skipped + report.cells_run

    def test_distributed_merge_reproduces_frozen_bytes(self, tmp_path):
        """A queue worker + merge_shards lands on the same bytes a
        single-machine framed campaign froze before the refactor."""
        spec, data, manifest = golden("framed_fixed")
        qspec = dataclasses.replace(
            spec,
            policy=dataclasses.replace(
                spec.policy, queue=str(tmp_path / "queue"),
                worker_id="w0",
            ),
        )
        campaign = Campaign(qspec)
        campaign.run()
        out = tmp_path / "merged.jsonl"
        campaign.merge(out)
        assert out.read_bytes() == data
        assert out.with_name(out.name + ".manifest").read_bytes() \
            == manifest


class TestEventStream:
    """The grammar, the source tags, and replay-to-state equivalence."""

    def test_grammar_and_fanout_order(self, tmp_path):
        spec, _, _ = golden("framed_fixed")
        recorder = Recorder()
        session = Campaign(spec).session(
            tmp_path / "r.jsonl", consumers=[recorder]
        )
        yielded = list(session.events())
        # Consumers see exactly the yielded stream, in the same order.
        assert recorder.events == yielded
        assert recorder.closed == [None]
        # CampaignStarted (Started Batch Finished Progress)* Finished
        cells = yielded[0].cells_total
        assert isinstance(yielded[0], CampaignStarted)
        assert isinstance(yielded[-1], CampaignFinished)
        assert len(yielded) == 2 + 4 * cells
        for i in range(cells):
            started, batch, finished, progress = \
                yielded[1 + 4 * i:5 + 4 * i]
            assert isinstance(started, CellStarted)
            assert isinstance(batch, ReplicaBatch)
            assert isinstance(finished, CellFinished)
            assert isinstance(progress, CampaignProgress)
            assert started.plan is batch.plan is finished.plan
            assert started.source == batch.source == finished.source \
                == "backend"
            assert finished.results == batch.results
            assert progress.cells_done == i + 1
        assert yielded[-1].report is session.result().report

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_replay_reconstructs_file_bytes(self, name, tmp_path):
        """An independent consumer holding only the events can rebuild
        the results file byte-for-byte (the consistent-observer
        property, proven against the frozen bytes)."""
        spec, data, _ = golden(name)
        recorder = Recorder()
        session = Campaign(spec).session(
            tmp_path / "live.jsonl", consumers=[recorder]
        )
        session.run()
        rebuilt = tmp_path / "rebuilt.jsonl"
        sink = make_sink(spec.policy.sink, rebuilt)
        sink.begin()
        for event in recorder.events:
            if isinstance(event, CellFinished) \
                    and event.source != "resume":
                sink.emit(event.plan, list(event.results))
        assert rebuilt.read_bytes() == data
        assert (tmp_path / "live.jsonl").read_bytes() == data

    def test_resume_cells_are_tagged_resume(self, tmp_path):
        spec, data, manifest = golden("framed_fixed")
        out = tmp_path / "r.jsonl"
        out.write_bytes(data[:len(data) // 2])
        out.with_name(out.name + ".manifest").write_bytes(manifest)
        recorder = Recorder()
        session = Campaign(spec).session(
            out, resume=True, consumers=[recorder]
        )
        session.run()
        started = recorder.events[0]
        assert started.resumed  # the half-file recovered something
        finished = [e for e in recorder.events
                    if isinstance(e, CellFinished)]
        by_source = {e.plan.index for e in finished
                     if e.source == "resume"}
        assert by_source == set(started.resumed)
        assert {e.source for e in finished} == {"resume", "backend"}
        # Recovered triples replay first, in grid order.
        head = [e.plan.index for e in finished[:len(by_source)]]
        assert head == sorted(by_source)
        assert out.read_bytes() == data
        report = session.result().report
        assert report.cells_skipped == len(by_source)

    def test_three_consumers_one_stream(self, tmp_path):
        """The acceptance shape: sink writer, store publisher and
        progress tracker (plus replay validation and a user consumer)
        all run off one stream, and each lands in its own medium."""
        spec, data, _ = golden("framed_fixed")
        recorder = Recorder()
        session = Campaign(spec).session(
            tmp_path / "r.jsonl", store=str(tmp_path / "store"),
            consumers=[recorder],
        )
        kinds = [type(c) for c in session.bus.consumers]
        assert kinds[:4] == [ControllerReplay, SinkWriter,
                             StorePublisher, ProgressTracker]
        execution = session.run()
        cells = len(execution.cells)
        publisher = next(c for c in session.bus.consumers
                         if isinstance(c, StorePublisher))
        replay = next(c for c in session.bus.consumers
                      if isinstance(c, ControllerReplay))
        # sink consumer: the frozen bytes
        assert (tmp_path / "r.jsonl").read_bytes() == data
        # store consumer: every fresh cell warehoused
        assert publisher.published == cells
        # replay consumer: every cell validated against the rule
        assert replay.validated == cells
        # metrics consumer: the report is its totals
        progress = session.progress()
        assert execution.report.cells_run == progress.cells_run == cells
        assert execution.report.replicas_run == progress.replicas_run
        # user consumer: saw every cell
        assert len([e for e in recorder.events
                    if isinstance(e, CellFinished)]) == cells

    def test_warm_store_replay_is_source_store(self, tmp_path):
        """A fully-warm run streams every cell as ``source="store"``,
        publishes nothing, and still writes byte-identical results."""
        spec, data, _ = golden("framed_fixed")
        store = str(tmp_path / "store")
        Campaign(spec).session(tmp_path / "cold.jsonl",
                               store=store).run()
        recorder = Recorder()
        warm = Campaign(spec).session(
            tmp_path / "warm.jsonl", store=store, consumers=[recorder]
        )
        execution = warm.run()
        finished = [e for e in recorder.events
                    if isinstance(e, CellFinished)]
        assert {e.source for e in finished} == {"store"}
        publisher = next(c for c in warm.bus.consumers
                         if isinstance(c, StorePublisher))
        assert publisher.published == 0
        assert (tmp_path / "warm.jsonl").read_bytes() == data
        assert execution.report.cells_cached \
            == execution.report.cells_total
        assert execution.report.replicas_run == 0

    def test_progress_pollable_mid_stream(self, tmp_path):
        spec, _, _ = golden("framed_fixed")
        session = Campaign(spec).session(tmp_path / "r.jsonl")
        assert session.progress().cells_done == 0
        seen = 0
        for event in session.events():
            if isinstance(event, CellFinished):
                seen += 1
                polled = session.progress()
                assert polled.cells_done == seen
                assert polled.cells_total == session.progress().cells_total
        assert session.progress().cells_done \
            == session.result().report.cells_total

    def test_cache_stats_surface(self, tmp_path):
        spec, _, _ = golden("framed_fixed")
        bare = Campaign(spec).session(tmp_path / "a.jsonl")
        assert bare.cache_stats() is None
        bare.run()
        stored = Campaign(spec).session(
            tmp_path / "b.jsonl", store=str(tmp_path / "store")
        )
        stored.run()
        stats = stored.cache_stats()
        assert stats is not None
        assert stats.max_bytes > 0


class TestBusContract:
    """Ordering, single-shot streams, error propagation, close-once."""

    def test_consumer_error_aborts_campaign(self, tmp_path):
        spec, _, _ = golden("framed_fixed")

        class Boom(EventConsumer):
            def __init__(self):
                self.closed = []

            def on_event(self, event):
                if isinstance(event, CellFinished):
                    raise RuntimeError("boom")

            def close(self, error=None):
                self.closed.append(error)

        boom = Boom()
        session = Campaign(spec).session(
            tmp_path / "r.jsonl", consumers=[boom]
        )
        with pytest.raises(RuntimeError, match="boom"):
            session.run()
        # closed exactly once, with the terminating error
        assert len(boom.closed) == 1
        assert isinstance(boom.closed[0], RuntimeError)
        # no result, and the stream cannot be re-consumed
        with pytest.raises(ParameterError, match="not finished"):
            session.result()
        with pytest.raises(ParameterError, match="consumed once"):
            next(session.events())

    def test_stream_is_single_shot(self, tmp_path):
        spec, _, _ = golden("framed_fixed")
        session = Campaign(spec).session(tmp_path / "r.jsonl")
        session.run()
        with pytest.raises(ParameterError, match="consumed once"):
            next(session.events())
        # but result() keeps answering
        assert session.result() is session.result()

    def test_subscribe_after_first_publish_refused(self, tmp_path):
        spec, _, _ = golden("framed_fixed")
        session = Campaign(spec).session(tmp_path / "r.jsonl")
        stream = session.events()
        next(stream)
        with pytest.raises(ParameterError, match="late consumer"):
            session.subscribe(Recorder())
        stream.close()

    def test_subscribe_type_checked(self):
        with pytest.raises(ParameterError, match="EventConsumer"):
            EventBus().subscribe(object())

    def test_close_runs_every_consumer_once(self):
        class FailingClose(Recorder):
            def close(self, error=None):
                super().close(error)
                raise RuntimeError("close failed")

        failing, tail = FailingClose(), Recorder()
        bus = EventBus()
        bus.subscribe(failing)
        bus.subscribe(tail)
        # Clean termination: the close failure surfaces...
        with pytest.raises(RuntimeError, match="close failed"):
            bus.close(None)
        # ...but every later consumer was still closed, exactly once,
        # and a second close is a no-op.
        assert failing.closed == [None] and tail.closed == [None]
        bus.close(None)
        assert failing.closed == [None] and tail.closed == [None]

    def test_close_failure_never_masks_stream_error(self):
        class FailingClose(Recorder):
            def close(self, error=None):
                super().close(error)
                raise RuntimeError("close failed")

        bus = EventBus()
        failing = bus.subscribe(FailingClose())
        error = ValueError("the stream's real failure")
        bus.close(error)  # must not raise: the caller propagates error
        assert failing.closed == [error]

    def test_controller_replay_rejects_inconsistent_stream(
        self, tmp_path
    ):
        """A CellFinished whose replica count disagrees with the
        stopping rule aborts the campaign by name."""
        spec, _, _ = golden("framed_fixed")
        recorder = Recorder()
        Campaign(spec).session(
            tmp_path / "r.jsonl", consumers=[recorder]
        ).run()
        event = next(e for e in recorder.events
                     if isinstance(e, CellFinished))
        truncated = dataclasses.replace(
            event, results=event.results[:1]
        )
        replay = ControllerReplay(FixedReplicas(len(event.results)))
        with pytest.raises(ParameterError, match="does not replay"):
            replay.on_event(truncated)
        assert replay.validated == 0
