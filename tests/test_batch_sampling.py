"""Batch-vs-scalar sampling contract of every FailureDistribution.

The vectorized backend samples inter-arrival matrices with
``dist.sample(rng, size=(rows, cols))``; the DES draws scalars one at a
time.  This file pins down, per law, which relationship holds:

* **Stream-identical** — ``sample(rng, size=n)`` consumes the generator
  exactly like ``n`` scalar draws, so batch and scalar code paths
  produce the *same numbers* from the same seed.  True for every
  single-component law (numpy's Generator vectorizes the identical
  bit-stream transformation).
* **Distribution-equal only** — :class:`Mixture` draws all component
  indices first and then fills each component's positions in grouped
  sub-batches, a different consumption order than alternating
  scalar draws; batch and scalar streams diverge but describe the same
  law.

Anything vectorized may rely on batch draws; anything claiming
byte-identity with a scalar path may rely on it only for the
stream-identical laws — that's why the vectorized backend's contract
with the DES is statistical, not byte-level, as soon as a mixture (or
any per-node stream reshaping) is involved.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.sim.distributions import (
    Deterministic,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Weibull,
)

STREAM_IDENTICAL = {
    "exponential": Exponential(100.0),
    "weibull": Weibull(100.0, 0.7),
    "lognormal": LogNormal(100.0, 1.2),
    "gamma": Gamma(100.0, 2.0),
    "deterministic": Deterministic(100.0),
    "empirical": Empirical([10.0, 20.0, 40.0, 80.0, 160.0]),
}
DISTRIBUTION_EQUAL = {
    "mixture": Mixture([Exponential(50.0), Exponential(500.0)], [0.7, 0.3]),
}
ALL_LAWS = {**STREAM_IDENTICAL, **DISTRIBUTION_EQUAL}


def batch_and_scalar(law, n: int, seed: int = 7):
    batch = np.asarray(law.sample(np.random.default_rng(seed), size=n))
    rng = np.random.default_rng(seed)
    scalar = np.array([float(law.sample(rng)) for _ in range(n)])
    return batch, scalar


@pytest.mark.parametrize("name", sorted(STREAM_IDENTICAL))
def test_single_component_laws_are_stream_identical(name):
    batch, scalar = batch_and_scalar(STREAM_IDENTICAL[name], 64)
    assert np.array_equal(batch, scalar)


def test_mixture_is_not_stream_identical():
    """Documents (and would catch a silent change of) the grouped
    component-fill order: if numpy or the implementation ever made this
    stream-identical, the docs above and the vectorized backend's
    byte-identity caveats should be revisited."""
    batch, scalar = batch_and_scalar(ALL_LAWS["mixture"], 64)
    assert not np.array_equal(batch, scalar)


@pytest.mark.parametrize("name", sorted(ALL_LAWS))
def test_batch_matches_scalar_distribution(name):
    """Both consumption orders describe the same law (two-sample KS on
    independent streams — deterministic seeds, no flakiness)."""
    law = ALL_LAWS[name]
    batch = np.asarray(law.sample(np.random.default_rng(1), size=4000))
    rng = np.random.default_rng(2)
    scalar = np.array([float(law.sample(rng)) for _ in range(4000)])
    if isinstance(law, Deterministic):
        assert np.array_equal(batch, scalar)  # KS is degenerate here
        return
    assert sps.ks_2samp(batch, scalar).pvalue > 0.01


@pytest.mark.parametrize("name", sorted(ALL_LAWS))
def test_matrix_shapes_flatten_consistently(name):
    """The vectorized sampler draws (rows, cols) matrices; a matrix draw
    must consume the stream like its flattened batch draw so row
    slicing can never change the numbers for stream-identical laws."""
    law = ALL_LAWS[name]
    matrix = np.asarray(law.sample(np.random.default_rng(3), size=(4, 8)))
    flat = np.asarray(law.sample(np.random.default_rng(3), size=32))
    assert matrix.shape == (4, 8)
    if name in STREAM_IDENTICAL:
        assert np.array_equal(matrix.ravel(), flat)


@pytest.mark.parametrize("name", sorted(ALL_LAWS))
def test_rescaled_batch_mean(name):
    """``rescale(m).sample(rng, size)`` — the exact composition the
    vectorized failure sampler uses — preserves the requested mean."""
    law = ALL_LAWS[name].rescale(250.0)
    draws = np.asarray(law.sample(np.random.default_rng(11), size=20000))
    se = float(np.std(draws)) / np.sqrt(draws.size)
    assert abs(float(np.mean(draws)) - 250.0) <= max(5.0 * se, 1e-9)
