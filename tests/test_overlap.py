"""Overlap model θ(φ): endpoints, inverse, slowdown (paper §II)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import OverlapModel
from repro.errors import ParameterError


@pytest.fixture
def base_model() -> OverlapModel:
    return OverlapModel(theta_min=4.0, alpha=10.0)


class TestEndpoints:
    def test_blocking_endpoint(self, base_model):
        # φ = θmin: fully blocking, θ = θmin.
        assert base_model.theta_of_phi(4.0) == pytest.approx(4.0)

    def test_hidden_endpoint(self, base_model):
        # φ = 0: fully hidden, θ = (1+α)θmin.
        assert base_model.theta_of_phi(0.0) == pytest.approx(44.0)
        assert base_model.theta_max == pytest.approx(44.0)

    def test_linearity(self, base_model):
        # θ(φ) = θmin + α(θmin − φ): at φ = θmin/2, θ = θmin(1 + α/2).
        assert base_model.theta_of_phi(2.0) == pytest.approx(4.0 + 10.0 * 2.0)

    def test_exa_values(self):
        model = OverlapModel(theta_min=60.0, alpha=10.0)
        assert model.theta_of_phi(0.0) == pytest.approx(660.0)
        assert model.theta_of_phi(6.0) == pytest.approx(600.0)


class TestInverse:
    def test_phi_of_theta_endpoints(self, base_model):
        assert base_model.phi_of_theta(4.0) == pytest.approx(4.0)
        assert base_model.phi_of_theta(44.0) == pytest.approx(0.0)

    def test_beyond_theta_max_keeps_zero(self, base_model):
        assert base_model.phi_of_theta(100.0) == 0.0

    def test_below_theta_min_rejected(self, base_model):
        with pytest.raises(ParameterError):
            base_model.phi_of_theta(3.0)

    @given(phi=st.floats(min_value=0.0, max_value=4.0))
    def test_roundtrip(self, phi):
        model = OverlapModel(theta_min=4.0, alpha=10.0)
        assert model.phi_of_theta(model.theta_of_phi(phi)) == pytest.approx(
            phi, abs=1e-9
        )

    def test_alpha_zero_degenerates(self):
        model = OverlapModel(theta_min=4.0, alpha=0.0)
        assert model.theta_of_phi(0.0) == pytest.approx(4.0)
        assert model.phi_of_theta(4.0) == pytest.approx(4.0)


class TestSlowdownAndWork:
    def test_slowdown_endpoints(self, base_model):
        assert base_model.slowdown(4.0) == pytest.approx(1.0)  # fully blocking
        assert base_model.slowdown(0.0) == pytest.approx(0.0)  # fully hidden

    def test_work_during_window(self, base_model):
        # θ(2) = 24, work = 24 − 2 = 22.
        assert base_model.work_during_window(2.0) == pytest.approx(22.0)

    @given(phi=st.floats(min_value=0.0, max_value=4.0))
    def test_work_nonnegative(self, phi):
        model = OverlapModel(theta_min=4.0, alpha=10.0)
        assert model.work_during_window(phi) >= -1e-12

    @given(
        phi1=st.floats(min_value=0.0, max_value=4.0),
        phi2=st.floats(min_value=0.0, max_value=4.0),
    )
    def test_theta_decreasing_in_phi(self, phi1, phi2):
        model = OverlapModel(theta_min=4.0, alpha=10.0)
        if phi1 < phi2:
            assert model.theta_of_phi(phi1) >= model.theta_of_phi(phi2)


class TestVectorisation:
    def test_array_in_array_out(self, base_model):
        phis = np.linspace(0, 4, 11)
        thetas = base_model.theta_of_phi(phis)
        assert thetas.shape == (11,)
        assert thetas[0] == pytest.approx(44.0)
        assert thetas[-1] == pytest.approx(4.0)

    def test_scalar_in_scalar_out(self, base_model):
        assert isinstance(base_model.theta_of_phi(1.0), float)
        assert isinstance(base_model.slowdown(1.0), float)

    def test_phi_grid(self, base_model):
        grid = base_model.phi_grid(5)
        np.testing.assert_allclose(grid, [0, 1, 2, 3, 4])
        with pytest.raises(ParameterError):
            base_model.phi_grid(1)


class TestValidation:
    def test_rejects_bad_theta_min(self):
        with pytest.raises(ParameterError):
            OverlapModel(theta_min=0.0, alpha=1.0)
        with pytest.raises(ParameterError):
            OverlapModel(theta_min=-1.0, alpha=1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            OverlapModel(theta_min=1.0, alpha=-0.5)

    def test_rejects_phi_out_of_range(self, base_model):
        with pytest.raises(ParameterError):
            base_model.theta_of_phi(5.0)
        with pytest.raises(ParameterError):
            base_model.theta_of_phi(-0.5)
