"""Risk Monte Carlo vs Eqs. (11)/(16), plus chain-semantics unit checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios, success_probability
from repro.errors import ParameterError
from repro.sim.riskmc import RiskMcConfig, run_risk_mc, simulate_group_fatal

DAY = 86400.0


class TestChainSemantics:
    """Small, hand-checkable regimes for the group state machine."""

    def test_no_failures_never_fatal(self):
        rng = np.random.default_rng(0)
        fatal = simulate_group_fatal(rng, group_size=2, lam=1e-12, risk=10.0,
                                     T=100.0, replicas=1000)
        assert not fatal.any()

    def test_huge_risk_window_always_fatal_once_two_fail(self):
        # Risk covering all of T: any replica where both nodes fail is fatal.
        rng = np.random.default_rng(1)
        lam, T = 0.05, 100.0  # λT = 5 ⇒ both fail almost surely
        fatal = simulate_group_fatal(rng, group_size=2, lam=lam, risk=2 * T,
                                     T=T, replicas=4000)
        assert fatal.mean() > 0.95

    def test_zero_risk_window_never_fatal(self):
        rng = np.random.default_rng(2)
        fatal = simulate_group_fatal(rng, group_size=2, lam=0.05, risk=0.0,
                                     T=100.0, replicas=4000)
        # Simultaneous failures have probability zero in continuous time.
        assert not fatal.any()

    def test_triple_needs_three(self):
        # Huge window: fatal iff all three members fail within T.
        rng = np.random.default_rng(3)
        lam, T = 0.05, 100.0
        fatal = simulate_group_fatal(rng, group_size=3, lam=lam, risk=2 * T,
                                     T=T, replicas=4000)
        p_all3 = (1 - np.exp(-lam * T)) ** 3
        assert fatal.mean() == pytest.approx(p_all3, abs=0.03)

    def test_double_first_order_rate(self):
        # Small-probability regime (λ·Risk = 5e-3): p_fatal ≈ 2λ²T·Risk.
        rng = np.random.default_rng(4)
        lam, risk, T = 1e-4, 50.0, 10_000.0
        fatal = simulate_group_fatal(rng, group_size=2, lam=lam, risk=risk,
                                     T=T, replicas=300_000)
        expected = 2 * lam**2 * T * risk  # = 1e-2
        assert fatal.mean() == pytest.approx(expected, rel=0.15)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            simulate_group_fatal(rng, group_size=4, lam=1.0, risk=1.0, T=1.0,
                                 replicas=10)
        with pytest.raises(ParameterError):
            simulate_group_fatal(rng, group_size=2, lam=0.0, risk=1.0, T=1.0,
                                 replicas=10)

    def test_event_cap(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            simulate_group_fatal(rng, group_size=2, lam=10.0, risk=1.0,
                                 T=1000.0, replicas=10, max_events=64)


class TestAgainstPaperFormulas:
    @pytest.mark.parametrize("spec", [DOUBLE_NBL, DOUBLE_BOF, TRIPLE],
                             ids=lambda s: s.key)
    def test_success_probability(self, spec):
        params = scenarios.BASE.parameters(M=60.0)
        T = 10 * DAY
        mc = run_risk_mc(RiskMcConfig(protocol=spec, params=params, T=T,
                                      phi=0.0, replicas=600_000, seed=8))
        model = success_probability(spec, params, 0.0, T)
        lo, hi = mc.success_ci
        # Wilson CI at the app level plus first-order model slack.
        assert lo - 0.05 <= model <= hi + 0.05

    def test_result_fields(self):
        params = scenarios.BASE.parameters(M=60.0)
        mc = run_risk_mc(RiskMcConfig(protocol=DOUBLE_NBL, params=params,
                                      T=DAY, phi=0.0, replicas=50_000, seed=1))
        assert mc.risk_window == pytest.approx(48.0)
        assert mc.lam == pytest.approx(params.lam)
        assert 0.0 <= mc.group_fatal_rate <= 1.0
        assert mc.success_ci[0] <= mc.success_probability <= mc.success_ci[1]

    def test_reproducible(self):
        params = scenarios.BASE.parameters(M=60.0)
        cfg = RiskMcConfig(protocol=DOUBLE_NBL, params=params, T=DAY,
                           phi=0.0, replicas=20_000, seed=2)
        assert run_risk_mc(cfg).group_fatal_rate == run_risk_mc(cfg).group_fatal_rate

    def test_bof_safer_than_nbl_empirically(self):
        params = scenarios.BASE.parameters(M=45.0)
        T = 20 * DAY
        kw = dict(params=params, T=T, phi=0.0, replicas=400_000, seed=3)
        p_nbl = run_risk_mc(RiskMcConfig(protocol=DOUBLE_NBL, **kw))
        p_bof = run_risk_mc(RiskMcConfig(protocol=DOUBLE_BOF, **kw))
        assert p_bof.group_fatal_rate < p_nbl.group_fatal_rate

    def test_config_validation(self):
        params = scenarios.BASE.parameters(M=60.0)
        with pytest.raises(ParameterError):
            RiskMcConfig(protocol=DOUBLE_NBL, params=params, T=0.0)
        with pytest.raises(ParameterError):
            RiskMcConfig(protocol=DOUBLE_NBL, params=params, T=1.0, replicas=0)
        with pytest.raises(ParameterError):
            RiskMcConfig(protocol=DOUBLE_NBL, params=params, T=1.0,
                         confidence=1.5)
