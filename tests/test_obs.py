"""Observability layer: registry wire safety, tracer fidelity, and the
no-perturbation guarantee.

The contract under test, in order of importance:

* **Telemetry never changes results** — a bus carrying three or more
  user consumers including a :class:`MetricsConsumer` still reproduces
  the frozen golden bytes exactly (the consumer is a pure observer).
* **Snapshots survive real JSON** — registry snapshots round-trip
  through ``json.dumps(allow_nan=False)`` even with NaN/±inf gauge
  values (the :mod:`repro.io` float sentinels), and unknown formats,
  versions, kinds and fields are refused by name.
* **The span tree matches the event stream** — a traced campaign's
  cell and replica-batch spans mirror the typed events one-to-one,
  parented under a single campaign root, and both exports (NDJSON,
  Chrome trace-event JSON) reload faithfully.
* **GET /metrics is real exposition** — a live service serves
  parseable Prometheus text covering executor, store, coalescer and
  HTTP-route series after a report fill.
* **Streaming is condition-variable fast** — a follower of
  ``CampaignHandle.events`` sees an appended event in well under the
  old 0.5 s poll interval.
"""

from __future__ import annotations

import json
import math
import pathlib
import queue
import re
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DOUBLE_NBL, scenarios
from repro.errors import ParameterError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    METRICS_WIRE_FORMAT,
    METRICS_WIRE_VERSION,
    MetricsConsumer,
    MetricsRegistry,
    Tracer,
    current_tracer,
    install_tracer,
    render_prometheus,
    set_enabled,
    snapshot_from_dict,
    span,
    span_from_dict,
    uninstall_tracer,
)
from repro.service import CampaignService
from repro.service.registry import CampaignHandle
from repro.sim.campaign import CampaignConfig
from repro.sim.events import CellStarted, EventConsumer, ReplicaBatch
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy
from repro.store import CampaignStore
from repro.store.cache import HotCellCache

GOLDEN = pathlib.Path(__file__).parent / "golden"
GOLDEN_NAMES = ("ordered_fixed", "framed_fixed", "framed_adaptive")


def golden(name: str):
    spec = CampaignSpec.load(GOLDEN / f"{name}.spec.json")
    data = (GOLDEN / f"{name}.jsonl").read_bytes()
    return spec, data


def tiny_spec(**overrides) -> CampaignSpec:
    grid = CampaignConfig(
        protocols=(DOUBLE_NBL,),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0,),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=1,
        seed=2027,
        **overrides,
    )
    return CampaignSpec(grid=grid, policy=ExecutionPolicy())


class Recorder(EventConsumer):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_is_identity_per_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"k": "1"})
        b = registry.counter("repro_x_total", labels={"k": "1"})
        c = registry.counter("repro_x_total", labels={"k": "2"})
        assert a is b and a is not c

    def test_kind_mismatch_refused_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ParameterError, match="repro_x_total"):
            registry.gauge("repro_x_total")

    def test_bucket_mismatch_refused_by_name(self):
        registry = MetricsRegistry()
        registry.histogram("repro_x_seconds", (1.0, 2.0))
        with pytest.raises(ParameterError, match="different buckets"):
            registry.histogram("repro_x_seconds", (1.0, 3.0))

    def test_counter_is_monotone(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ParameterError, match="cannot decrease"):
            counter.inc(-1)

    def test_invalid_names_and_labels_refused(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ParameterError, match="label"):
            registry.counter("repro_x_total", labels={"0bad": "v"})

    def test_histogram_buckets_and_overflow(self):
        histogram = MetricsRegistry().histogram("repro_x_seconds",
                                                (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts() == (1, 1, 1)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_gauge_aggregation_modes(self):
        registry = MetricsRegistry()
        summed = registry.gauge("repro_x_bytes")
        summed.set(3.0)
        extra = registry.register(
            type(summed)("repro_x_bytes", aggregate="sum"))
        extra.set(4.0)
        peak = registry.gauge("repro_y_peak", aggregate="max")
        peak.set(7.0)
        entries = {e["name"]: e
                   for e in snapshot_from_dict(registry.snapshot())}
        assert entries["repro_x_bytes"]["value"] == 7.0
        assert entries["repro_y_peak"]["value"] == 7.0
        # The reference is weak: dropping the component instrument
        # drops its contribution from the next snapshot.
        del extra
        entries = {e["name"]: e
                   for e in snapshot_from_dict(registry.snapshot())}
        assert entries["repro_x_bytes"]["value"] == 3.0

    def test_disabled_registry_exports_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_x_total")
        counter.inc(5)
        owned_by_component = MetricsRegistry().counter("repro_y_total")
        registry.register(owned_by_component)
        assert registry.snapshot()["series"] == []
        registry.absorb(MetricsRegistry().snapshot())
        # The instrument itself keeps counting — it is API, not export.
        assert counter.value == 5.0


# ----------------------------------------------------------------------
# Snapshot wire format (hypothesis round-trip through real JSON)
# ----------------------------------------------------------------------
counter_incs = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    max_size=5)
gauge_values = st.floats(allow_nan=True, allow_infinity=True,
                         width=64)
observations = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    max_size=8)


class TestSnapshotWire:
    @settings(max_examples=50, deadline=None)
    @given(incs=counter_incs, level=gauge_values, obs=observations)
    def test_round_trip_through_real_json(self, incs, level, obs):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", help="c",
                                   labels={"source": "backend"})
        for amount in incs:
            counter.inc(amount)
        registry.gauge("repro_t_level", aggregate="max").set(level)
        histogram = registry.histogram("repro_t_seconds", (0.5, 2.0),
                                       unit="seconds")
        for value in obs:
            histogram.observe(value)

        snap = registry.snapshot()
        # The whole point of the sentinel encoding: NaN/±inf survive a
        # *strict* JSON encoder, no allow_nan crutch.
        text = json.dumps(snap, sort_keys=True, allow_nan=False)
        decoded_snap = json.loads(text)
        series = snapshot_from_dict(decoded_snap)
        by_name = {e["name"]: e for e in series}
        value = by_name["repro_t_total"]["value"]
        assert value == pytest.approx(math.fsum(incs))
        got_level = by_name["repro_t_level"]["value"]
        assert got_level == level or (
            math.isnan(got_level) and math.isnan(level))
        assert by_name["repro_t_seconds"]["count"] == len(obs)
        assert len(by_name["repro_t_seconds"]["counts"]) == 3

        # Absorbing the decoded snapshot reproduces it bit-for-bit.
        other = MetricsRegistry()
        other.absorb(decoded_snap)
        assert other.snapshot() == snap

        # And the exposition renders every value, NaN/±inf included.
        assert render_prometheus(decoded_snap)

    def test_wire_markers(self):
        snap = MetricsRegistry().snapshot()
        assert snap["format"] == METRICS_WIRE_FORMAT
        assert snap["version"] == METRICS_WIRE_VERSION

    def test_refusals_by_name(self):
        good = MetricsRegistry()
        good.counter("repro_x_total").inc()
        snap = good.snapshot()

        with pytest.raises(ParameterError, match="not a repro-metrics"):
            snapshot_from_dict({"format": "something-else"})
        with pytest.raises(ParameterError,
                           match="unsupported metrics version"):
            snapshot_from_dict({**snap, "version": 99})
        bad_kind = json.loads(json.dumps(snap))
        bad_kind["series"][0]["kind"] = "summary"
        with pytest.raises(ParameterError,
                           match="unknown metric kind 'summary'"):
            snapshot_from_dict(bad_kind)
        extra = json.loads(json.dumps(snap))
        extra["series"][0]["surprise"] = 1
        with pytest.raises(ParameterError, match="unknown fields"):
            snapshot_from_dict(extra)

    def test_histogram_counts_length_validated(self):
        registry = MetricsRegistry()
        registry.histogram("repro_x_seconds", (1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        snap["series"][0]["counts"] = [1]
        with pytest.raises(ParameterError, match="per bucket plus"):
            snapshot_from_dict(snap)


# ----------------------------------------------------------------------
# MetricsConsumer: pure observation, proven on the frozen bytes
# ----------------------------------------------------------------------
class TestMetricsConsumer:
    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_three_consumers_cannot_perturb_golden_bytes(self, name,
                                                         tmp_path):
        """Two recorders + an explicit MetricsConsumer (on top of the
        session's own) ride the bus — and the output bytes still match
        the pre-observability frozen goldens exactly."""
        spec, data = golden(name)
        out = tmp_path / "results.jsonl"
        before, after = Recorder(), Recorder()
        metrics = MetricsConsumer(export_registry=MetricsRegistry())
        session = Campaign(spec).session(
            out, consumers=[before, metrics, after])
        execution = session.run()
        assert out.read_bytes() == data
        assert before.events == after.events

        series = {e["name"]: e
                  for e in snapshot_from_dict(metrics.snapshot())}
        cells = sum(
            e["value"] for e in snapshot_from_dict(metrics.snapshot())
            if e["name"] == "repro_executor_cells_total")
        assert cells == execution.report.cells_total
        assert series["repro_executor_campaigns_total"]["value"] == 1
        assert series["repro_executor_cell_seconds"]["count"] \
            == execution.report.cells_total

    def test_report_carries_metrics_snapshot(self, tmp_path):
        execution = Campaign(tiny_spec()).run(tmp_path / "r.jsonl")
        metrics = execution.report.metrics
        assert metrics is not None
        names = {e["name"] for e in snapshot_from_dict(metrics)}
        assert "repro_executor_cells_total" in names
        assert "repro_executor_replicas_per_second" in names

    def test_metrics_never_enter_the_report_wire(self, tmp_path):
        from repro.sim.events import CampaignFinished, event_from_dict, \
            event_to_dict

        execution = Campaign(tiny_spec()).run(tmp_path / "r.jsonl")
        wire = event_to_dict(CampaignFinished(report=execution.report))
        assert "metrics" not in json.dumps(wire)
        decoded = event_from_dict(wire)
        assert decoded.report.metrics is None
        # ...and the wire-stripped report still equals the original
        # (metrics is compare=False: telemetry, not a result).
        assert decoded.report == execution.report

    def test_disabled_obs_skips_the_consumer(self, tmp_path):
        set_enabled(False)
        try:
            execution = Campaign(tiny_spec()).run(tmp_path / "r.jsonl")
            assert execution.report.metrics is None
        finally:
            set_enabled(True)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_parenthood_and_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer", "t"):
                with tracer.span("inner", "t", detail=1):
                    raise RuntimeError("boom")
        outer, inner = {s.name: s for s in tracer.spans()}["outer"], \
            {s.name: s for s in tracer.spans()}["inner"]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.args == {"detail": 1}
        assert inner.start >= outer.start
        assert inner.duration <= outer.duration

    def test_module_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("anything") as record:
            assert record is None

    def test_span_tree_matches_event_stream(self, tmp_path):
        spec, _ = golden("framed_fixed")
        recorder = Recorder()
        tracer = install_tracer(Tracer())
        try:
            Campaign(spec).session(
                tmp_path / "r.jsonl", consumers=[recorder]).run()
        finally:
            uninstall_tracer()
        by_name: dict = {}
        for record in tracer.spans():
            by_name.setdefault(record.name, []).append(record)

        assert len(by_name["campaign"]) == 1
        root = by_name["campaign"][0]
        assert root.parent_id is None
        started = [e for e in recorder.events
                   if isinstance(e, CellStarted)]
        batches = [e for e in recorder.events
                   if isinstance(e, ReplicaBatch)]
        cells = by_name["cell"]
        assert len(cells) == len(started)
        assert all(record.parent_id == root.span_id for record in cells)
        assert {record.args["index"] for record in cells} \
            == {e.plan.index for e in started}
        cell_ids = {record.span_id for record in cells}
        replica = by_name["replica-batch"]
        assert len(replica) == len(batches)
        assert all(record.parent_id in cell_ids for record in replica)

    def test_ndjson_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", "t", ratio=float("nan")):
            with tracer.span("b", "t"):
                pass
        path = tmp_path / "trace.ndjson"
        assert tracer.write_ndjson(path) == 2
        reloaded = [span_from_dict(json.loads(line))
                    for line in path.read_text().splitlines()]
        originals = list(tracer.spans())
        # NaN != NaN would fail a whole-dataclass comparison; check the
        # NaN arg explicitly and everything else structurally.
        assert math.isnan(reloaded[0].args.pop("ratio"))
        assert math.isnan(originals[0].args.pop("ratio"))
        assert reloaded == originals

    def test_chrome_export_is_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cell", "executor", index=3):
            pass
        path = tmp_path / "trace.json"
        assert tracer.write_chrome(path) == 1
        trace = json.loads(path.read_text())
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "executor"
        assert event["args"]["index"] == 3
        assert event["dur"] >= 0

    def test_span_wire_refusals(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        wire = tracer.spans()[0].to_dict()
        with pytest.raises(ParameterError, match="not a repro-trace"):
            span_from_dict({"format": "nope"})
        with pytest.raises(ParameterError, match="unsupported trace"):
            span_from_dict({**wire, "version": 9})
        with pytest.raises(ParameterError, match="corrupt trace span"):
            span_from_dict({**wire, "surprise": 1})


# ----------------------------------------------------------------------
# Store / cache thin views stay exact over the instruments
# ----------------------------------------------------------------------
class TestThinViews:
    def test_read_stats_view_equals_instruments(self, tmp_path):
        store = CampaignStore(tmp_path / "store", create=True)
        spec = tiny_spec()
        from repro.sim.executor import execute_spec

        execute_spec(spec, store=store)     # cold: miss + publish
        execute_spec(spec, store=store)     # warm: hits
        reads = store.read_stats()
        assert reads.lookups >= 2
        assert reads.active == 0
        assert reads.peak_concurrent >= 1
        from repro.obs import default_registry

        names = {e["name"]: e for e in snapshot_from_dict(
            default_registry().snapshot())}
        assert names["repro_store_lookups_total"]["value"] \
            >= reads.lookups

    def test_cache_stats_view_equals_instruments(self):
        from repro.store.cache import CachedEntry

        registry = MetricsRegistry()
        cache = HotCellCache(max_bytes=1 << 20, registry=registry)
        text = '{"payload": 1}'
        entry = CachedEntry(
            key={"k": 1}, result=object(), payload_text=text,
            payload_sha256=__import__("hashlib")
            .sha256(text.encode()).hexdigest(),
        )
        cache.put("root", "token", entry)
        assert cache.get("root", "token") is entry
        assert cache.get("root", "absent") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.entries == 1 and stats.bytes == len(text)
        entries = {e["name"]: e
                   for e in snapshot_from_dict(registry.snapshot())}
        assert entries["repro_store_cache_hits_total"]["value"] == 1
        assert entries["repro_store_cache_misses_total"]["value"] == 1
        assert entries["repro_store_cache_bytes"]["value"] == len(text)


# ----------------------------------------------------------------------
# Service: GET /metrics and condition-variable streaming
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def parse_exposition(text: str) -> dict[str, list[str]]:
    """A strict little exposition parser: every non-comment line must
    be ``name[{labels}] value``; returns samples grouped by name."""
    samples: dict[str, list[str]] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        samples.setdefault(match.group(1), []).append(match.group(3))
    return samples


class TestServiceObservability:
    def test_metrics_endpoint_covers_every_layer(self, tmp_path):
        spec = tiny_spec()
        with CampaignService(store=tmp_path / "store",
                             data_dir=tmp_path / "data") as svc:
            body = json.dumps({"spec": spec.to_dict()}).encode()
            req = urllib.request.Request(
                svc.url("/reports"), data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=60.0) as resp:
                assert resp.status == 200
            with urllib.request.urlopen(svc.url("/metrics"),
                                        timeout=10.0) as resp:
                first = resp.read().decode("utf-8")
                content_type = resp.headers.get("Content-Type")
            assert content_type.startswith("text/plain; version=0.0.4")
            samples = parse_exposition(first)
            # One series family per instrumented layer, all live in
            # one scrape of one process.
            for family in (
                "repro_executor_cells_total",        # executor
                "repro_store_lookups_total",         # store
                "repro_coalescer_led_total",         # coalescer
                "repro_http_requests_total",         # HTTP routes
            ):
                assert family in samples, f"{family} missing"
            # The first scrape itself gets metered under its own route
            # label — in the handler's finally, *after* the body is on
            # the wire, so poll briefly rather than race it.
            deadline = time.monotonic() + 5.0
            while True:
                with urllib.request.urlopen(svc.url("/metrics"),
                                            timeout=10.0) as resp:
                    second = resp.read().decode("utf-8")
                parse_exposition(second)  # still fully parseable
                if 'route="/metrics"' in second \
                        or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
        # The POST /reports was metered under its route label, and the
        # first scrape shows up in a later one.
        route_lines = [
            line for line in first.splitlines()
            if line.startswith("repro_http_request_seconds_count")
        ]
        assert any('route="/reports"' in line for line in route_lines)
        assert 'route="/metrics"' in second

    def test_event_followers_wake_without_polling(self):
        handle = CampaignHandle("obs-test", None,
                                pathlib.Path("unused.jsonl"))
        arrivals: queue.Queue = queue.Queue()

        def consume():
            for event in handle.events(follow=True):
                arrivals.put((event, time.perf_counter()))

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.2)  # park the follower inside cond.wait()
        sent_at = time.perf_counter()
        handle._append({"n": 1})
        _, seen_at = arrivals.get(timeout=5.0)
        latency = seen_at - sent_at
        # The old implementation polled every 0.5 s (mean latency
        # 0.25 s); the condition-variable wakeup is effectively
        # immediate.  0.2 s of slack absorbs scheduler noise while
        # still refuting any poll-based implementation.
        assert latency < 0.2, f"follower woke after {latency:.3f}s"
        handle._set_state("finished")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
