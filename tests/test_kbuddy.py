"""Generalised k-buddy model: consistency with TRIPLE and k trade-offs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TRIPLE, scenarios
from repro.core.kbuddy import KBuddyModel, recommend_k
from repro.core.waste import waste_at_optimum
from repro.errors import ParameterError

DAY = 86400.0


@pytest.fixture
def params():
    return scenarios.BASE.parameters(M=600.0)


class TestConsistencyWithTriple:
    """k = 3 must reproduce the paper's TRIPLE exactly."""

    @pytest.mark.parametrize("phi", [0.0, 0.5, 2.0, 4.0])
    def test_waste(self, params, phi):
        k3 = KBuddyModel(3)
        w_k = k3.waste_at_optimum(params, phi)
        w_t = float(np.asarray(waste_at_optimum(TRIPLE, params, phi).total))
        assert w_k == pytest.approx(w_t, rel=1e-12)

    @pytest.mark.parametrize("phi", [0.0, 2.0])
    def test_risk_window(self, params, phi):
        from repro import risk_window

        assert KBuddyModel(3).risk_window(params, phi) == pytest.approx(
            risk_window(TRIPLE, params, phi)
        )

    def test_success_probability(self, phi=0.0):
        from repro import success_probability

        params = scenarios.BASE.parameters(M=60.0)
        T = 10 * DAY
        assert KBuddyModel(3).success_probability(params, phi, T) == pytest.approx(
            success_probability(TRIPLE, params, phi, T), rel=1e-9
        )

    def test_optimal_period(self, params):
        from repro import optimal_period

        assert KBuddyModel(3).optimal_period(params, 1.0) == pytest.approx(
            optimal_period(TRIPLE, params, 1.0)
        )


class TestKTradeoffs:
    def test_memory_grows_linearly(self):
        assert KBuddyModel(2).images_held() == 1
        assert KBuddyModel(3).images_held() == 2
        assert KBuddyModel(5).images_held() == 4

    def test_success_improves_with_k(self):
        params = scenarios.BASE.parameters(M=60.0, n=10320)  # % 2,3,4,5 == 0
        T = 30 * DAY
        probs = [KBuddyModel(k).success_probability(params, 0.0, T)
                 for k in (2, 3, 4)]
        assert probs[0] < probs[1] <= probs[2]

    def test_waste_grows_with_k_at_positive_phi(self, params):
        phi = 2.0
        wastes = [KBuddyModel(k).waste_at_optimum(params, phi)
                  for k in (2, 3, 4, 5)]
        assert all(b >= a - 1e-12 for a, b in zip(wastes, wastes[1:]))

    def test_k2_risk_behaves_like_double(self):
        # One remote image: a pair is at risk after any single failure,
        # so fatal probability is O(λ²) — same order as DOUBLE.
        params = scenarios.BASE.parameters(M=60.0)
        T = 10 * DAY
        p2 = KBuddyModel(2).success_probability(params, 0.0, T)
        p3 = KBuddyModel(3).success_probability(params, 0.0, T)
        assert p2 < 0.9
        assert p3 > 0.99

    def test_min_period_scales(self, params):
        theta = params.theta(1.0)
        assert float(np.asarray(KBuddyModel(4).min_period(params, 1.0))) == (
            pytest.approx(3 * theta)
        )


class TestRecommendK:
    def test_base_regime_picks_3(self):
        params = scenarios.BASE.parameters(M=60.0, n=10320)
        k, table = recommend_k(params, 0.0, T=30 * DAY, target_success=0.99)
        assert k == 3
        assert table[2]["success"] < 0.99 <= table[3]["success"]
        assert table[3]["images"] == 2.0

    def test_harsher_regime_needs_more(self):
        params = scenarios.BASE.parameters(M=5.0, n=10320)
        k, _ = recommend_k(params, 0.0, T=365 * DAY, target_success=0.999)
        assert k >= 4

    def test_impossible_raises(self):
        params = scenarios.BASE.parameters(M=0.2, n=10320)
        with pytest.raises(ParameterError):
            recommend_k(params, 0.0, T=36500 * DAY, target_success=0.999999,
                        max_k=3)

    def test_skips_nondividing_k(self):
        params = scenarios.BASE.parameters(M=60.0, n=10368)  # not % 5
        _, table = recommend_k(params, 0.0, T=DAY, target_success=0.5)
        assert 5 not in table


class TestValidation:
    @pytest.mark.parametrize("k", [1, 0, -2, 2.5, True])
    def test_bad_k(self, k):
        with pytest.raises(ParameterError):
            KBuddyModel(k)

    def test_bad_phi(self, params):
        with pytest.raises(ParameterError):
            KBuddyModel(3).waste_at_optimum(params, 10.0)

    def test_bad_n_for_success(self, params):
        with pytest.raises(ParameterError):
            KBuddyModel(5).success_probability(params, 0.0, DAY)

    def test_bad_target(self, params):
        with pytest.raises(ParameterError):
            recommend_k(params, 0.0, DAY, target_success=1.5)

    def test_negative_t(self, params):
        with pytest.raises(ParameterError):
            KBuddyModel(3).group_fatal_probability(params, 0.0, -1.0)
