"""Unit handling: time/size/rate parsing, formatting, MTBF conversions."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.errors import UnitParseError


class TestParseTime:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0s", 0.0),
            ("15s", 15.0),
            ("1min", 60.0),
            ("1.5 min", 90.0),
            ("10 minutes", 600.0),
            ("7h", 25200.0),
            ("1 day", 86400.0),
            ("2d", 172800.0),
            ("1w", 604800.0),
            ("1y", 365.25 * 86400.0),
            ("1e3 s", 1000.0),
        ],
    )
    def test_known_strings(self, text, expected):
        assert units.parse_time(text) == pytest.approx(expected)

    def test_bare_number_is_seconds(self):
        assert units.parse_time(42) == 42.0
        assert units.parse_time(3.5) == 3.5
        assert units.parse_time("42") == 42.0

    def test_case_insensitive_units(self):
        assert units.parse_time("7H") == units.parse_time("7h")
        assert units.parse_time("3 MIN") == 180.0

    @pytest.mark.parametrize("bad", ["7 parsecs", "h7", "", "--3s", "1 2s", None, [1]])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitParseError):
            units.parse_time(bad)

    def test_rejects_negative(self):
        with pytest.raises(UnitParseError):
            units.parse_time("-5s")
        with pytest.raises(UnitParseError):
            units.parse_time(-1)

    def test_rejects_nan_inf(self):
        with pytest.raises(UnitParseError):
            units.parse_time(float("nan"))
        with pytest.raises(UnitParseError):
            units.parse_time(float("inf"))


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0s"),
            (15, "15s"),
            (60, "1min"),
            (90, "1.5min"),
            (3600, "1h"),
            (25200, "7h"),
            (86400, "1d"),
        ],
    )
    def test_round_values(self, seconds, expected):
        assert units.format_time(seconds) == expected

    def test_roundtrip(self):
        for s in (1.0, 12.0, 59.0, 61.0, 3599.0, 90000.0, 1e6):
            # format_time keeps 6 significant digits (display precision).
            assert units.parse_time(units.format_time(s)) == pytest.approx(s, rel=1e-4)

    def test_rejects_negative(self):
        with pytest.raises(UnitParseError):
            units.format_time(-1.0)


class TestSizes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512MB", 512_000_000),
            ("1GB", 10**9),
            ("1GiB", 2**30),
            ("64GB", 64 * 10**9),
            ("0B", 0),
            (123, 123),
        ],
    )
    def test_parse(self, text, expected):
        assert units.parse_size(text) == expected

    def test_format(self):
        assert units.format_size(512_000_000) == "512MB"
        assert units.format_size(1000) == "1kB"
        assert units.format_size(5) == "5B"

    def test_rejects_unknown_unit(self):
        with pytest.raises(UnitParseError):
            units.parse_size("12 XB")


class TestRates:
    def test_bytes_per_second(self):
        assert units.parse_rate("1GB/s") == pytest.approx(1e9)
        assert units.parse_rate("256MB/s") == pytest.approx(256e6)

    def test_bits_per_second(self):
        # Exa's local storage: 500 Gb/s = 62.5 GB/s.
        assert units.parse_rate("500Gb/s") == pytest.approx(500e9 / 8)

    def test_per_minute(self):
        assert units.parse_rate("60MB/min") == pytest.approx(1e6)

    def test_plain_number(self):
        assert units.parse_rate(2.5e9) == 2.5e9

    def test_format(self):
        assert units.format_rate(1e9) == "1GB/s"

    @pytest.mark.parametrize("bad", ["fast", "1GB", "1GB/parsec", None])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitParseError):
            units.parse_rate(bad)


class TestTransferAndMtbf:
    def test_transfer_time_base_scenario(self):
        # 512MB at ~128MB/s ≈ the paper's 4s remote upload.
        assert units.transfer_time(units.parse_size("512MB"), 128e6) == pytest.approx(4.0)

    def test_transfer_rejects_bad_rate(self):
        with pytest.raises(UnitParseError):
            units.transfer_time(1.0, 0.0)
        with pytest.raises(UnitParseError):
            units.transfer_time(-1.0, 1.0)

    def test_mtbf_roundtrip(self):
        m_platform = 600.0
        n = 10368
        m_node = units.per_node_mtbf(m_platform, n)
        assert m_node == pytest.approx(600.0 * 10368)
        assert units.platform_mtbf(m_node, n) == pytest.approx(m_platform)

    def test_intro_example_50y_mtbf_million_nodes(self):
        # §I: 50-year node MTBF on 1e6 nodes -> platform failure every ~26min.
        m = units.platform_mtbf(50 * units.YEAR, 10**6)
        assert 20 * units.MINUTE < m < 30 * units.MINUTE

    def test_mtbf_validation(self):
        with pytest.raises(UnitParseError):
            units.per_node_mtbf(0.0, 10)
        with pytest.raises(UnitParseError):
            units.platform_mtbf(10.0, 0)
