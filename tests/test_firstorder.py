"""Generic first-order machinery: F, waste composition, optimal period."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import firstorder as fo
from repro.errors import ParameterError


class TestExpectedLostTime:
    def test_scalar(self):
        assert fo.expected_lost_time(10.0, 100.0) == pytest.approx(60.0)

    def test_broadcast(self):
        out = fo.expected_lost_time(np.array([1.0, 2.0]), 10.0)
        np.testing.assert_allclose(out, [6.0, 7.0])


class TestWasteComposition:
    def test_eq5_identity(self):
        # WASTE = wf + wff − wf·wff.
        wff, wf = 0.1, 0.2
        assert fo.combine_waste(wff, wf) == pytest.approx(0.28)

    def test_saturation(self):
        assert fo.combine_waste(1.0, 0.0) == 1.0
        assert fo.combine_waste(0.0, 1.5) == 1.0

    def test_zero_period_is_infinite_ff_waste(self):
        assert fo.waste_fault_free(1.0, 0.0) == np.inf

    @given(
        wff=st.floats(min_value=0, max_value=0.999),
        wf=st.floats(min_value=0, max_value=0.999),
    )
    def test_combined_bounded(self, wff, wf):
        out = float(fo.combine_waste(wff, wf))
        assert 0.0 <= out <= 1.0
        assert out >= max(wff, wf) - 1e-12  # combining never helps


class TestWasteAtPeriod:
    def test_below_min_period_saturates(self):
        assert fo.waste_at_period(c=2.0, A=10.0, p_min=6.0, P=5.0, M=1e4) == 1.0

    def test_matches_manual(self):
        c, A, M, P = 2.0, 48.0, 25200.0, 317.19
        expected = (A + P / 2) / M + c / P - (A + P / 2) / M * (c / P)
        got = float(fo.waste_at_period(c, A, 6.0, P, M))
        assert got == pytest.approx(expected)


class TestOptimalPeriod:
    def test_closed_form(self):
        # P* = sqrt(2c(M−A)).
        assert fo.optimal_period_unclamped(2.0, 48.0, 25200.0) == pytest.approx(
            np.sqrt(2 * 2 * (25200 - 48))
        )

    def test_infeasible_is_nan(self):
        assert np.isnan(fo.optimal_period_unclamped(2.0, 100.0, 50.0))
        assert np.isnan(fo.optimal_period_clamped(2.0, 100.0, 5.0, 50.0))

    def test_clamped_to_p_min(self):
        # c = 0 → unconstrained optimum 0 → clamp to p_min.
        assert fo.optimal_period_clamped(0.0, 10.0, 88.0, 25200.0) == 88.0

    @given(
        c=st.floats(min_value=0.01, max_value=100.0),
        A=st.floats(min_value=0.0, max_value=1000.0),
        M=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_optimum_beats_neighbours(self, c, A, M):
        """The clamped optimum is a true minimum on the feasible domain."""
        p_min = 1.0
        p_opt = float(fo.optimal_period_clamped(c, A, p_min, M))
        if np.isnan(p_opt):
            return
        w_opt = float(fo.waste_at_period(c, A, p_min, p_opt, M))
        for factor in (0.5, 0.9, 1.1, 2.0):
            p_alt = max(p_min, p_opt * factor)
            w_alt = float(fo.waste_at_period(c, A, p_min, p_alt, M))
            assert w_opt <= w_alt + 1e-9

    def test_waste_at_optimum_infeasible(self):
        assert fo.waste_at_optimum(2.0, 100.0, 5.0, 50.0) == 1.0


class TestFeasibility:
    def test_mask(self):
        mask = fo.feasible_mask(
            c=2.0, A=48.0, p_min=6.0, M=np.array([10.0, 1e4])
        )
        np.testing.assert_array_equal(mask, [False, True])

    def test_rejects_bad_p_min(self):
        with pytest.raises(ParameterError):
            fo.feasible_mask(1.0, 1.0, 0.0, 100.0)

    def test_saturated_boundary_counts_infeasible(self):
        # M just above A but p_min so large the boundary waste is 1.
        assert not bool(fo.feasible_mask(c=10.0, A=9.0, p_min=10.0, M=10.0))
