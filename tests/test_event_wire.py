"""The event wire format: one schema for NDJSON streams and replay.

Contract under test (mirrors the spec/envelope serialisation
discipline): ``event_to_dict`` emits a versioned, strictly-JSON-safe
dict for every event kind; ``event_from_dict`` is its exact inverse
(``event_to_dict(event_from_dict(d)) == d`` — property-tested through
real JSON text, non-finite floats included); unknown kinds, versions
and fields are refused by name; and a ``CellFinished`` cell is
*recomputed* from its plan and replicas, so the wire can never carry an
aggregate that disagrees with its inputs.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io as repro_io
from repro.errors import ParameterError
from repro.sim.events import (
    EVENT_SOURCES,
    EVENT_WIRE_FORMAT,
    EVENT_WIRE_VERSION,
    CampaignFinished,
    CampaignProgress,
    CampaignStarted,
    CellFinished,
    CellStarted,
    ReplicaBatch,
    event_from_dict,
    event_to_dict,
    make_cell,
)
from repro.sim.executor import CellPlan, ExecutionReport
from repro.sim.spec import Campaign
from repro.experiments.scenarios import get_campaign_preset

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
any_float = st.one_of(finite, st.just(float("nan")),
                      st.just(float("inf")), st.just(float("-inf")))

plans = st.builds(
    CellPlan,
    index=st.integers(min_value=0, max_value=10_000),
    protocol=st.sampled_from(["double-nbl", "triple", "double-blocking"]),
    m_index=st.integers(min_value=0, max_value=50),
    M=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    phi=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    effective_phi=st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False),
)


@st.composite
def des_results(draw):
    from repro.sim.results import DesResult

    status = draw(st.sampled_from(["completed", "fatal", "timeout"]))
    return DesResult(
        status=status,
        makespan=draw(st.floats(min_value=0.0, max_value=1e9,
                                allow_nan=False)),
        work_target=draw(st.floats(min_value=1.0, max_value=1e9,
                                   allow_nan=False)),
        work_done=draw(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False)),
        failures=draw(st.integers(min_value=0, max_value=1000)),
        rollbacks=draw(st.integers(min_value=0, max_value=1000)),
        work_lost=draw(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False)),
        commits=draw(st.integers(min_value=0, max_value=10_000)),
        risk_time=draw(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False)),
        fatal_time=draw(any_float),
        fatal_group=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=64), max_size=4))),
        meta=draw(st.dictionaries(
            st.text(max_size=12),
            st.one_of(st.text(max_size=12), any_float,
                      st.integers(min_value=-2**53, max_value=2**53),
                      st.booleans(), st.none()),
            max_size=6)),
    )


result_batches = st.lists(des_results(), min_size=1, max_size=4)
sources = st.sampled_from(EVENT_SOURCES)

progress_events = st.builds(
    CampaignProgress,
    cells_total=st.integers(min_value=0, max_value=10_000),
    cells_resumed=st.integers(min_value=0, max_value=10_000),
    cells_cached=st.integers(min_value=0, max_value=10_000),
    cells_run=st.integers(min_value=0, max_value=10_000),
    replicas_run=st.integers(min_value=0, max_value=100_000),
    elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)

reports = st.builds(
    ExecutionReport,
    cells_total=st.integers(min_value=0, max_value=10_000),
    cells_skipped=st.integers(min_value=0, max_value=10_000),
    cells_run=st.integers(min_value=0, max_value=10_000),
    workers=st.integers(min_value=1, max_value=64),
    chunk_size=st.integers(min_value=1, max_value=64),
    elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    replicas_run=st.integers(min_value=0, max_value=100_000),
    sink=st.sampled_from(["ordered", "framed"]),
    cells_cached=st.integers(min_value=0, max_value=10_000),
)


def wire_round_trip(event):
    """Through real JSON text, exactly as the NDJSON stream carries it."""
    wire = event_to_dict(event)
    text = json.dumps(wire, sort_keys=True, allow_nan=False)
    back = event_from_dict(json.loads(text))
    assert type(back) is type(event)
    # Wire-dict equality is the exact-round-trip claim (NaN is encoded
    # as a typed sentinel, so dict equality is well defined).
    assert event_to_dict(back) == wire
    return back


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(plan=plans, source=sources)
    def test_cell_started(self, plan, source):
        back = wire_round_trip(CellStarted(plan=plan, source=source))
        assert back.plan == plan
        assert back.source == source

    @settings(max_examples=60, deadline=None)
    @given(plan=plans, results=result_batches, source=sources)
    def test_replica_batch(self, plan, results, source):
        event = ReplicaBatch(plan=plan, results=tuple(results),
                             source=source)
        back = wire_round_trip(event)
        assert back.plan == plan
        assert [repro_io.dump_result(r) for r in back.results] == \
            [repro_io.dump_result(r) for r in results]

    @settings(max_examples=60, deadline=None)
    @given(plan=plans, results=result_batches, source=sources)
    def test_cell_finished_recomputes_the_cell(self, plan, results, source):
        results = tuple(results)
        event = CellFinished(plan=plan, cell=make_cell(plan, results),
                             results=results, source=source)
        wire = event_to_dict(event)
        assert "cell" not in wire  # derivable state never transmitted
        back = wire_round_trip(event)
        assert back.cell.protocol == plan.protocol
        assert back.cell.summary.n_replicas == len(results)
        mean = back.cell.summary.mean
        expected = event.cell.summary.mean
        assert mean == expected or (
            math.isnan(mean) and math.isnan(expected)
        )

    @settings(max_examples=60, deadline=None)
    @given(event=progress_events)
    def test_progress(self, event):
        assert wire_round_trip(event) == event

    @settings(max_examples=60, deadline=None)
    @given(report=reports)
    def test_finished(self, report):
        assert wire_round_trip(CampaignFinished(report=report)).report \
            == report

    def test_campaign_started_carries_the_spec(self):
        spec = get_campaign_preset("smoke").spec()
        from repro.sim.executor import plan_cells

        event = CampaignStarted(
            spec=spec, plans=tuple(plan_cells(spec.config())),
            resumed=(0, 2),
        )
        back = wire_round_trip(event)
        assert back.spec == spec
        assert back.plans == event.plans
        assert back.resumed == (0, 2)

    def test_live_stream_round_trips(self, tmp_path):
        """Every event of a real campaign survives the wire."""
        spec = get_campaign_preset("smoke").spec()
        session = Campaign(spec).session(tmp_path / "r.jsonl")
        kinds = [type(wire_round_trip(ev)).__name__
                 for ev in session.events()]
        assert kinds[0] == "CampaignStarted"
        assert kinds[-1] == "CampaignFinished"
        assert "CellFinished" in kinds


# ----------------------------------------------------------------------
# Refused by name
# ----------------------------------------------------------------------
class TestValidation:
    def good(self):
        plan = CellPlan(index=0, protocol="triple", m_index=0, M=600.0,
                        phi=1.0, effective_phi=1.0)
        return event_to_dict(CellStarted(plan=plan))

    def test_header_is_stamped(self):
        wire = self.good()
        assert wire["format"] == EVENT_WIRE_FORMAT
        assert wire["version"] == EVENT_WIRE_VERSION

    def test_rejects_non_dict(self):
        with pytest.raises(ParameterError, match="must be an object"):
            event_from_dict(["CellStarted"])

    def test_rejects_foreign_format(self):
        with pytest.raises(ParameterError, match="format"):
            event_from_dict({**self.good(), "format": "something-else"})

    def test_rejects_future_version(self):
        with pytest.raises(ParameterError, match="version 99"):
            event_from_dict({**self.good(), "version": 99})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="unknown campaign-event"):
            event_from_dict({**self.good(), "kind": "CellExploded"})

    def test_rejects_unknown_field(self):
        with pytest.raises(ParameterError, match="surprise"):
            event_from_dict({**self.good(), "surprise": 1})

    def test_rejects_unknown_source(self):
        with pytest.raises(ParameterError, match="unknown event source"):
            event_from_dict({**self.good(), "source": "telepathy"})

    def test_rejects_missing_plan_field(self):
        wire = self.good()
        del wire["plan"]["M"]
        with pytest.raises(ParameterError, match="missing"):
            event_from_dict(wire)

    def test_rejects_summary_results(self):
        """A summary envelope is a valid repro.io record but not a
        replica result; the wire refuses it by type."""
        from repro.sim.results import MonteCarloSummary

        summary = MonteCarloSummary.from_samples([0.25, 0.5])
        plan = CellPlan(index=0, protocol="triple", m_index=0, M=600.0,
                        phi=1.0, effective_phi=1.0)
        wire = {
            "format": EVENT_WIRE_FORMAT, "version": EVENT_WIRE_VERSION,
            "kind": "ReplicaBatch",
            "plan": dataclasses.asdict(plan), "source": "backend",
            "results": [repro_io.to_envelope(summary)],
        }
        with pytest.raises(ParameterError, match="DesResult"):
            event_from_dict(wire)

    def test_rejects_unserialisable_event(self):
        class Mystery:
            pass

        with pytest.raises(ParameterError, match="cannot serialise"):
            event_to_dict(Mystery())
