"""Joint (φ, P) tuning: interior optima and risk-constrained choices."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.analysis.tuning import optimal_phi, optimal_phi_constrained
from repro.core.waste import waste_at_optimum
from repro.errors import InfeasibleModelError, ParameterError

DAY = 86400.0


class TestOptimalPhi:
    def test_large_m_prefers_zero_phi_for_triple(self):
        # Fault-free term dominates: TRIPLE wants the fully hidden
        # transfer (c = 2φ → 0).
        params = scenarios.BASE.parameters(M="7h")
        choice = optimal_phi(TRIPLE, params)
        assert choice.phi < 0.05
        assert choice.waste <= waste_at_optimum(TRIPLE, params, 2.0).total

    def test_small_m_prefers_positive_phi(self):
        # Failure term dominates: a long θ inflates A = D+R+θ, so some
        # overhead is worth paying to shorten the window.
        params = scenarios.BASE.parameters(M=90.0)
        choice = optimal_phi(TRIPLE, params)
        assert choice.phi > 0.5

    def test_beats_grid(self):
        params = scenarios.BASE.parameters(M=240.0)
        choice = optimal_phi(DOUBLE_NBL, params)
        grid = np.linspace(0, 4, 101)
        grid_best = float(np.min(np.asarray(
            waste_at_optimum(DOUBLE_NBL, params, grid).total)))
        assert choice.waste <= grid_best + 1e-9

    def test_consequences_consistent(self):
        params = scenarios.BASE.parameters(M=600.0)
        choice = optimal_phi(DOUBLE_NBL, params)
        assert choice.theta == pytest.approx(
            4 + 10 * (4 - choice.phi), rel=1e-9)
        assert choice.risk_window == pytest.approx(4 + choice.theta)
        assert np.isnan(choice.success)

    def test_infeasible_platform_raises(self):
        params = scenarios.BASE.parameters(M=5.0)
        with pytest.raises(InfeasibleModelError):
            optimal_phi(DOUBLE_NBL, params)

    def test_boundary_feasibility_rescue(self):
        # M = 20 s: φ near 0 saturates (A = 48 > M) but φ = R is feasible
        # (A = 8); the tuner must find the feasible boundary region.
        params = scenarios.BASE.parameters(M=20.0)
        choice = optimal_phi(DOUBLE_NBL, params)
        assert choice.waste < 1.0
        assert choice.phi > 2.0


class TestConstrainedPhi:
    def test_constraint_binds_when_waste_and_risk_pull_apart(self):
        """At M = 30 min the waste optimum sits at low φ (long window),
        but a long window means a long risk window: a 99.5% floor over a
        90-day exploitation forces φ up, at a waste premium."""
        params = scenarios.BASE.parameters(M=1800.0)
        T = 90 * DAY
        free = optimal_phi(DOUBLE_NBL, params)
        from repro import success_probability

        assert success_probability(DOUBLE_NBL, params, free.phi, T) < 0.995
        constrained = optimal_phi_constrained(
            DOUBLE_NBL, params, T, min_success=0.995)
        assert constrained is not None
        assert constrained.success >= 0.995
        assert constrained.phi > free.phi
        assert constrained.waste > free.waste

    def test_unreachable_floor_returns_none(self):
        params = scenarios.BASE.parameters(M=30.0)
        out = optimal_phi_constrained(DOUBLE_NBL, params, 30 * DAY,
                                      min_success=0.999999)
        assert out is None

    def test_triple_meets_floor_cheaply(self):
        params = scenarios.BASE.parameters(M=60.0)
        T = 10 * DAY
        nbl = optimal_phi_constrained(DOUBLE_NBL, params, T, min_success=0.99)
        tri = optimal_phi_constrained(TRIPLE, params, T, min_success=0.99)
        assert tri is not None
        # The paper's conclusion in tuning form: TRIPLE satisfies the
        # floor with less waste than NBL (which may not satisfy it at all).
        if nbl is not None:
            assert tri.waste < nbl.waste

    def test_validation(self):
        params = scenarios.BASE.parameters(M=600.0)
        with pytest.raises(ParameterError):
            optimal_phi_constrained(DOUBLE_NBL, params, 0.0)
        with pytest.raises(ParameterError):
            optimal_phi_constrained(DOUBLE_NBL, params, 1.0, min_success=2.0)
        with pytest.raises(ParameterError):
            optimal_phi_constrained(DOUBLE_NBL, params, 1.0, num_grid=1)
