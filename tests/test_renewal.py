"""Renewal Monte Carlo vs the expected-lost-time formulas (Eqs. 7/8/14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_BLOCKING, DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.core.period import optimal_period
from repro.errors import InfeasibleModelError, ParameterError
from repro.sim.renewal import (
    RenewalConfig,
    mean_block_samples,
    run_renewal,
    run_renewal_batch,
)
from tests.conftest import ALL_PROTOCOLS


@pytest.fixture
def params():
    return scenarios.BASE.parameters(M=600.0)


class TestMechanics:
    def test_reproducible(self, params):
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                            n_periods=5000, seed=1)
        assert run_renewal(cfg).waste == run_renewal(cfg).waste

    def test_default_period_is_optimal(self, params):
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                            n_periods=100, seed=1)
        r = run_renewal(cfg)
        assert r.period == pytest.approx(optimal_period(DOUBLE_NBL, params, 1.0))

    def test_infeasible_raises(self):
        params = scenarios.BASE.parameters(M=15.0)
        with pytest.raises(InfeasibleModelError):
            run_renewal(RenewalConfig(protocol=DOUBLE_NBL, params=params,
                                      phi=0.0, n_periods=100))

    def test_period_below_min_rejected(self, params):
        with pytest.raises(ParameterError):
            run_renewal(RenewalConfig(protocol=DOUBLE_NBL, params=params,
                                      phi=1.0, period=10.0, n_periods=10))

    def test_config_validation(self, params):
        with pytest.raises(ParameterError):
            RenewalConfig(protocol=DOUBLE_NBL, params=params, n_periods=0)

    def test_no_failures_waste_is_ff_only(self):
        quiet = scenarios.BASE.parameters(M=1e12)
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=quiet, phi=1.0,
                            period=300.0, n_periods=100, seed=1)
        r = run_renewal(cfg)
        assert r.n_failures == 0
        assert np.isnan(r.mean_block)
        assert r.waste == pytest.approx(1.0 - 297.0 / 300.0)


class TestFormulaValidation:
    @pytest.mark.parametrize("spec", ALL_PROTOCOLS, ids=lambda s: s.key)
    @pytest.mark.parametrize("phi", [0.5, 2.0])
    def test_f_hat_matches_formula(self, spec, phi, params):
        period = optimal_period(spec, params, phi)
        cfg = RenewalConfig(protocol=spec, params=params, phi=phi,
                            period=float(period), n_periods=150_000, seed=9)
        r = run_renewal(cfg)
        f_model = float(np.asarray(spec.expected_lost_time(params, phi, period)))
        assert r.mean_block == pytest.approx(f_model, rel=0.02)

    def test_phase_hits_proportional_to_lengths(self, params):
        # Failures strike uniformly: hits ∝ phase lengths.
        period = 300.0
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                            period=period, n_periods=200_000, seed=2)
        r = run_renewal(cfg)
        lengths = np.array([2.0, 34.0, 264.0])
        expected = lengths / period
        observed = np.asarray(r.phase_hits) / r.n_failures
        np.testing.assert_allclose(observed, expected, atol=0.01)

    def test_waste_close_to_model(self, params):
        from repro.core.waste import waste

        cfg = RenewalConfig(protocol=DOUBLE_BOF, params=params, phi=1.0,
                            n_periods=100_000, seed=3)
        r = run_renewal(cfg)
        w_model = float(waste(DOUBLE_BOF, params, 1.0, r.period))
        # Documented O((F/M)^2) thinning bias ⇒ generous tolerance.
        assert r.waste == pytest.approx(w_model, rel=0.12)

    def test_batch_summary(self, params):
        cfg = RenewalConfig(protocol=TRIPLE, params=params, phi=1.0,
                            n_periods=20_000, seed=4)
        results, summary = run_renewal_batch(cfg, replicas=8)
        assert len(results) == 8
        assert summary.n_replicas == 8
        assert summary.ci_low < summary.mean < summary.ci_high
        assert len({r.waste for r in results}) == 8  # distinct seeds

    def test_batch_validation(self, params):
        cfg = RenewalConfig(protocol=TRIPLE, params=params, phi=1.0,
                            n_periods=100)
        with pytest.raises(ParameterError):
            run_renewal_batch(cfg, replicas=0)

    def test_mean_block_aggregation_survives_no_failure_replicas(self):
        """Near-zero failure rates: some replicas see no failures and
        carry ``mean_block = NaN``.  A raw ``np.mean`` over the batch is
        poisoned by a single such replica — the bug that blanked F̂ in
        the validation report whenever M was large.  Aggregate through
        ``mean_block_samples`` instead."""
        quiet = scenarios.BASE.parameters(M=2e5)  # ~0.3 failures/replica
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=quiet, phi=1.0,
                            period=300.0, n_periods=200, seed=11)
        results, _ = run_renewal_batch(cfg, replicas=24)
        raw = [r.mean_block for r in results]
        assert any(np.isnan(x) for x in raw)  # the hazard is present...
        assert np.isnan(np.mean(raw))  # ...and it poisons a raw mean
        clean = mean_block_samples(results)
        assert 0 < len(clean) < len(results)
        assert np.isfinite(np.mean(clean))
        # The surviving samples are exactly the finite ones, unreordered.
        assert clean == [x for x in raw if np.isfinite(x)]

    def test_mean_block_samples_of_an_all_quiet_batch_is_empty(self):
        """Callers get an empty list (not NaN, not a crash) when no
        replica saw a failure — 'too few failures to estimate F'."""
        silent = scenarios.BASE.parameters(M=1e12)
        cfg = RenewalConfig(protocol=DOUBLE_NBL, params=silent, phi=1.0,
                            period=300.0, n_periods=50, seed=12)
        results, _ = run_renewal_batch(cfg, replicas=4)
        assert mean_block_samples(results) == []

    def test_blocking_protocol_runs(self, params):
        cfg = RenewalConfig(protocol=DOUBLE_BLOCKING, params=params, phi=0.0,
                            n_periods=50_000, seed=5)
        r = run_renewal(cfg)
        f_model = float(np.asarray(
            DOUBLE_BLOCKING.expected_lost_time(params, 0.0, r.period)))
        assert r.mean_block == pytest.approx(f_model, rel=0.05)
