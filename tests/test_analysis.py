"""Analysis layer: sweeps, ratios, numeric optimisation, sensitivity, crossover."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.analysis.crossover import find_mtbf_frontier, find_phi_crossover
from repro.analysis.optimize import numeric_optimal_period, verify_closed_form
from repro.analysis.ratios import ratio_surface, waste_ratio_cut
from repro.analysis.sensitivity import elasticity, waste_sensitivities
from repro.analysis.sweep import risk_surface, waste_cut, waste_surface
from repro.errors import InfeasibleModelError, ParameterError


class TestWasteSurface:
    def test_shape_and_axes(self):
        surf = waste_surface(DOUBLE_NBL, "base", num_phi=11, num_m=13)
        assert surf.waste.shape == (13, 11)
        assert surf.m_grid.shape == (13,)
        assert surf.phi_grid[-1] == pytest.approx(4.0)
        assert surf.phi_over_r[-1] == pytest.approx(1.0)

    def test_waste_monotone_in_m(self, figure_protocol):
        surf = waste_surface(figure_protocol, "base", num_phi=5, num_m=17)
        diffs = np.diff(surf.waste, axis=0)
        assert np.all(diffs <= 1e-12)

    def test_corners(self):
        surf = waste_surface(DOUBLE_NBL, "base", num_phi=5, num_m=9)
        assert surf.waste[0].max() >= 0.9   # M = 15 s: near-total waste
        assert surf.waste[-1].max() < 0.02  # M = 1 day: negligible waste

    def test_period_nan_iff_waste_one(self):
        surf = waste_surface(DOUBLE_NBL, "exa", num_phi=5, num_m=9)
        nan_mask = np.isnan(surf.period)
        assert np.all(surf.waste[nan_mask] == 1.0)


class TestWasteCut:
    def test_default_m_is_7h(self):
        x, w = waste_cut(DOUBLE_NBL, "base", num_phi=11)
        assert x[0] == 0.0 and x[-1] == 1.0
        assert w[0] == pytest.approx(0.014452, abs=1e-5)

    def test_explicit_m(self):
        _, w_short = waste_cut(DOUBLE_NBL, "base", M="10min", num_phi=5)
        _, w_long = waste_cut(DOUBLE_NBL, "base", M="1d", num_phi=5)
        assert np.all(w_short > w_long)


class TestRatioCut:
    def test_fig5_invariants(self):
        x, bof = waste_ratio_cut(DOUBLE_BOF, DOUBLE_NBL, "base", num_phi=21)
        _, tri = waste_ratio_cut(TRIPLE, DOUBLE_NBL, "base", num_phi=21)
        assert np.all(bof >= 1.0 - 1e-12)        # BOF never better
        assert bof[-1] == pytest.approx(1.0)     # equal at φ/R = 1
        assert tri[0] == pytest.approx(0.2526, abs=0.001)
        assert tri[-1] == pytest.approx(1.1515, abs=0.001)

    def test_fig8_invariants(self):
        x, tri = waste_ratio_cut(TRIPLE, DOUBLE_NBL, "exa", num_phi=101)
        # §VI-B: gain up to ≈25% around φ/R = 1/10.
        idx = np.argmin(np.abs(x - 0.1))
        assert tri[idx] == pytest.approx(0.77, abs=0.03)
        assert np.nanmin(tri) > 0.70

    def test_saturated_cells_are_nan(self):
        # At M = 15 s the φ = 0 corner saturates (A = 48 > M) → NaN ratio;
        # the φ = R corner stays feasible (A = 8 < M).
        x, ratio = waste_ratio_cut(TRIPLE, DOUBLE_NBL, "base", M=15.0, num_phi=5)
        assert np.isnan(ratio[0])
        assert np.isfinite(ratio[-1])


class TestRiskSurface:
    def test_shape_and_range(self):
        surf = risk_surface(DOUBLE_NBL, "base", num_m=7, num_t=6)
        assert surf.success.shape == (7, 6)
        assert np.all((surf.success >= 0) & (surf.success <= 1))

    def test_theta_policy(self):
        s_max = risk_surface(DOUBLE_NBL, "base", theta_policy="max",
                             num_m=3, num_t=3)
        s_min = risk_surface(DOUBLE_NBL, "base", theta_policy="min",
                             num_m=3, num_t=3)
        assert np.all(s_min.success >= s_max.success)  # shorter window, safer
        with pytest.raises(ParameterError):
            risk_surface(DOUBLE_NBL, "base", theta_policy="medium")

    def test_ratio_surface_fig6_shape(self):
        surf = ratio_surface(DOUBLE_NBL, DOUBLE_BOF, "base", num_m=7, num_t=6)
        assert np.nanmin(surf.ratio) < 0.9   # separation at low M, long T
        assert np.nanmax(surf.ratio) <= 1.0 + 1e-9
        # Worst corner: smallest M, longest T.
        assert surf.ratio[0, -1] == np.nanmin(surf.ratio)


class TestNumericOptimum:
    @pytest.mark.parametrize("phi", [0.25, 1.0, 3.0])
    def test_closed_form_verified(self, figure_protocol, phi, base_7h):
        check = verify_closed_form(figure_protocol, base_7h, phi)
        assert check.waste_abs_error < 1e-6
        assert check.period_rel_error < 0.02  # waste is flat near optimum

    def test_clamped_case_verified(self, base_7h):
        # TRIPLE at phi→0 clamps to P_min; numeric optimiser must agree.
        check = verify_closed_form(TRIPLE, base_7h, 0.001)
        assert check.waste_abs_error < 1e-6

    def test_infeasible_raises(self):
        params = scenarios.BASE.parameters(M=15.0)
        with pytest.raises(InfeasibleModelError):
            numeric_optimal_period(DOUBLE_NBL, params, 0.0)
        with pytest.raises(InfeasibleModelError):
            verify_closed_form(DOUBLE_NBL, params, 0.0)


class TestSensitivity:
    def test_signs(self, base_7h):
        sens = waste_sensitivities(DOUBLE_NBL, base_7h, 1.0)
        assert sens["M"].derivative < 0      # more reliable ⇒ less waste
        assert sens["delta"].derivative > 0  # slower local ckpt ⇒ more waste
        assert sens["R"].derivative > 0

    def test_alpha_matters_less_at_high_phi(self, base_7h):
        # At φ = R the transfer is blocking; α barely matters.
        hi = abs(waste_sensitivities(DOUBLE_NBL, base_7h, 3.9)["alpha"].derivative)
        lo = abs(waste_sensitivities(DOUBLE_NBL, base_7h, 0.1)["alpha"].derivative)
        assert hi <= lo + 1e-6

    def test_elasticity_accessor(self, base_7h):
        e = elasticity(DOUBLE_NBL, base_7h, 1.0, "M")
        assert e == pytest.approx(-0.5, abs=0.1)  # waste ~ M^(−1/2)

    def test_unknown_field(self, base_7h):
        with pytest.raises(ParameterError):
            elasticity(DOUBLE_NBL, base_7h, 1.0, "n")

    def test_zero_valued_field_uses_forward_difference(self, base_7h):
        sens = waste_sensitivities(DOUBLE_NBL, base_7h, 1.0)
        assert sens["D"].value == 0.0
        assert np.isfinite(sens["D"].derivative)
        assert sens["D"].derivative > 0


class TestCrossover:
    def test_triple_crossover_in_paper_band(self, base_7h):
        # Fig. 5: TRIPLE/NBL crosses 1 for φ/R somewhere in [0.4, 0.8].
        phi_star = find_phi_crossover(TRIPLE, DOUBLE_NBL, base_7h)
        assert phi_star is not None
        assert 0.4 <= phi_star / base_7h.R <= 0.8

    def test_dominated_pair_returns_none(self, base_7h):
        # BOF never strictly crosses NBL (≥ everywhere on (0, R)).
        assert find_phi_crossover(DOUBLE_BOF, DOUBLE_NBL, base_7h,
                                  hi=3.9) is None

    def test_crossover_validation(self, base_7h):
        with pytest.raises(ParameterError):
            find_phi_crossover(TRIPLE, DOUBLE_NBL, base_7h, lo=5.0, hi=1.0)

    def test_mtbf_frontier_monotone_in_target(self, base_7h):
        m50 = find_mtbf_frontier(DOUBLE_NBL, base_7h, 1.0, waste_target=0.5)
        m10 = find_mtbf_frontier(DOUBLE_NBL, base_7h, 1.0, waste_target=0.1)
        assert m50 < m10  # reaching 10% waste needs a better machine

    def test_mtbf_frontier_exa_day_claim(self, exa_7h):
        """§VI-B: 'waste will be important when failures hit the system
        more than once a day' — the 10%-waste frontier sits at hours."""
        m = find_mtbf_frontier(DOUBLE_NBL, exa_7h, 6.0, waste_target=0.1)
        assert 600.0 < m < 86400.0

    def test_frontier_validation(self, base_7h):
        with pytest.raises(ParameterError):
            find_mtbf_frontier(DOUBLE_NBL, base_7h, 1.0, waste_target=1.5)
        with pytest.raises(ParameterError):
            find_mtbf_frontier(DOUBLE_NBL, base_7h, 1.0, m_lo=10.0, m_hi=5.0)

    def test_frontier_boundaries(self, base_7h):
        # Target already met at m_lo (waste(300s) ≈ 0.25 < 0.9) → returns m_lo.
        assert find_mtbf_frontier(DOUBLE_NBL, base_7h, 1.0,
                                  waste_target=0.9, m_lo=300.0) == 300.0
