"""Parallel campaign executor: planning, bit-identity, resume.

The engine's contract is strong: sharded multi-process execution must be
*bit-identical* to the serial path (same cells, same JSONL bytes), and
resuming a truncated results file must complete the grid without
re-running or duplicating finished cells.  These tests pin both down.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import DOUBLE_BLOCKING, DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.errors import ParameterError
from repro.sim import backends
from repro.sim.campaign import CampaignConfig, run_campaign
from repro.sim.executor import (
    execute_campaign,
    plan_cells,
    run_campaign_parallel,
)


def make_config(results_path=None, **overrides) -> CampaignConfig:
    """The acceptance grid: 2 protocols × 3 M × 1 φ × 4 replicas."""
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0, 600.0, 1200.0),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=4,
        seed=2026,
        share_traces=True,
        results_path=results_path,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


def canonical(cells):
    """Cells as their serialised envelopes (NaN-safe exact comparison)."""
    return [
        (c.protocol, c.M, c.phi, repro_io.dump_result(c.summary),
         tuple(repro_io.dump_result(r) for r in c.results))
        for c in cells
    ]


class TestPlanning:
    def test_serial_order(self):
        plans = plan_cells(make_config(phi_values=(0.5, 2.0)))
        assert [p.index for p in plans] == list(range(12))
        # protocol-major, then M, then phi — the serial iteration order
        assert (plans[0].protocol, plans[0].M, plans[0].phi) == ("double-nbl", 300.0, 0.5)
        assert (plans[1].phi, plans[2].M) == (2.0, 600.0)
        assert plans[6].protocol == "triple"

    def test_effective_phi_tracks_protocol(self):
        plans = plan_cells(make_config(protocols=(DOUBLE_NBL, DOUBLE_BLOCKING)))
        by_proto = {p.protocol: p for p in plans}
        assert by_proto["double-nbl"].effective_phi == 1.0
        # DOUBLE-BLOCKING pins phi = theta_min = R regardless of the request
        assert by_proto["double-blocking"].effective_phi == pytest.approx(4.0)

    def test_rejects_indivisible_node_count(self):
        cfg = make_config(base_params=scenarios.BASE.parameters(M=600.0, n=16))
        with pytest.raises(ParameterError, match="group size"):
            plan_cells(cfg)  # triple needs n % 3 == 0

    def test_rejects_collapsed_phi_sweep(self):
        """DOUBLE-BLOCKING pins every phi to theta_min: sweeping phi with
        it would produce bit-identical duplicate cells."""
        cfg = make_config(protocols=(DOUBLE_BLOCKING,),
                          phi_values=(1.0, 2.0, 4.0))
        with pytest.raises(ParameterError, match="same effective"):
            plan_cells(cfg)


class TestSerialEngineParity:
    """workers=1 must reproduce the historical serial path exactly."""

    def test_chunk_size_is_invisible(self, tmp_path):
        files = {}
        for chunk in (1, 2, 5):
            path = tmp_path / f"c{chunk}.jsonl"
            execution = execute_campaign(
                make_config(path), workers=1, chunk_size=chunk
            )
            assert execution.report.cells_run == 6
            files[chunk] = path.read_bytes()
        assert files[1] == files[2] == files[5]

    def test_run_campaign_matches_executor(self, tmp_path):
        serial = run_campaign(make_config(tmp_path / "a.jsonl"))
        execution = execute_campaign(make_config(tmp_path / "b.jsonl"), workers=1)
        assert canonical(serial) == canonical(execution.cells)
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


@pytest.mark.campaign
class TestParallelBitIdentity:
    def test_workers_match_serial(self, tmp_path):
        serial = run_campaign(make_config(tmp_path / "serial.jsonl"))
        parallel = run_campaign_parallel(
            make_config(tmp_path / "par.jsonl"), workers=2
        )
        assert canonical(serial) == canonical(parallel)
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "par.jsonl").read_bytes()

    def test_without_shared_traces(self, tmp_path):
        serial = run_campaign(make_config(share_traces=False))
        parallel = run_campaign_parallel(
            make_config(share_traces=False), workers=2, chunk_size=1
        )
        assert canonical(serial) == canonical(parallel)


class TestResume:
    @pytest.fixture()
    def finished(self, tmp_path):
        """A completed campaign: (config factory, full file bytes, cells)."""
        path = tmp_path / "campaign.jsonl"
        cells = run_campaign(make_config(path))
        return path, path.read_bytes(), cells

    def test_resume_truncated_mid_cell(self, finished, monkeypatch):
        path, full, cells = finished
        lines = full.split(b"\n")
        # Keep 1.5 cells: one complete cell (4 replicas) + 2 runs + a torn record.
        path.write_bytes(b"\n".join(lines[:6]) + b"\n" + lines[6][:25])

        calls = []
        real_run_des = backends.run_des
        monkeypatch.setattr(
            backends, "run_des", lambda cfg: calls.append(cfg) or real_run_des(cfg)
        )
        execution = execute_campaign(make_config(path), workers=1, resume=True)
        assert execution.report.cells_skipped == 1
        assert execution.report.cells_run == 5
        # The finished cell was not re-simulated: only 5 cells × 4 replicas ran.
        assert len(calls) == 20
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full

    def test_resume_complete_file_runs_nothing(self, finished):
        path, full, cells = finished
        execution = execute_campaign(make_config(path), workers=1, resume=True)
        assert execution.report.cells_run == 0
        assert execution.report.cells_skipped == 6
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full

    def test_resume_missing_file_runs_everything(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        execution = execute_campaign(make_config(path), workers=1, resume=True)
        assert execution.report.cells_skipped == 0
        assert execution.report.cells_run == 6

    def test_resume_requires_results_path(self):
        with pytest.raises(ParameterError, match="results_path"):
            execute_campaign(make_config(), resume=True)

    def test_resume_rejects_foreign_file(self, finished):
        path, full, _ = finished
        other = make_config(path, m_values=(450.0, 900.0, 1800.0))
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(other, workers=1, resume=True)
        assert path.read_bytes() == full  # refused before touching the file

    def test_resume_rejects_changed_seed(self, finished):
        """Resuming under a different seed would mix two campaigns'
        replicas into one irreproducible result set."""
        path, full, _ = finished
        with pytest.raises(ParameterError, match="seed"):
            execute_campaign(make_config(path, seed=2027), workers=1,
                             resume=True)
        assert path.read_bytes() == full

    def test_resume_checks_partial_trailing_cell(self, finished):
        """Even without a manifest, a lone sub-replica record is
        identity-checked: a foreign file must be refused, not silently
        truncated to nothing."""
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()  # legacy file
        first_line = full.split(b"\n")[0] + b"\n"
        path.write_bytes(first_line)  # 1 record < replicas=4
        other = make_config(path, m_values=(450.0, 900.0, 1800.0))
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(other, workers=1, resume=True)
        assert path.read_bytes() == first_line

    def test_resume_rejects_oversized_file(self, finished):
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()
        smaller = make_config(path, m_values=(300.0, 600.0))
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(smaller, workers=1, resume=True)
        assert path.read_bytes() == full

    @pytest.mark.parametrize(
        "drift",
        [
            dict(work_target=1200.0),
            dict(share_traces=False),
            dict(replicas=5),
            dict(max_time=50_000.0),
        ],
        ids=lambda d: next(iter(d)),
    )
    def test_manifest_refuses_config_drift(self, finished, drift):
        """Settings invisible in per-record metadata still refuse resume."""
        path, full, _ = finished
        with pytest.raises(ParameterError, match="configuration changed"):
            execute_campaign(make_config(path, **drift), workers=1,
                             resume=True)
        assert path.read_bytes() == full

    def test_manifest_refuses_changed_distribution(self, finished):
        from repro.sim.distributions import Weibull

        path, full, _ = finished
        drifted = make_config(path, distribution=Weibull(1.0, 0.7))
        with pytest.raises(ParameterError, match="distribution"):
            execute_campaign(drifted, workers=1, resume=True)
        assert path.read_bytes() == full

    def test_manifestless_resume_rejects_changed_work_target(self, finished):
        """work_target rides on every record, so even without a manifest a
        different workload refuses instead of mixing campaigns."""
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(make_config(path, work_target=1800.0),
                             workers=1, resume=True)
        assert path.read_bytes() == full

    def test_manifestless_resume_rejects_changed_node_count(self, finished):
        """Per-record checks catch a different platform size even when the
        manifest sidecar is gone (protocol/M/phi/seed alone cannot)."""
        path, full, _ = finished
        path.with_name(path.name + ".manifest").unlink()
        drifted = make_config(
            path, base_params=scenarios.BASE.parameters(M=600.0, n=24)
        )
        with pytest.raises(ParameterError, match="refusing to resume"):
            execute_campaign(drifted, workers=1, resume=True)
        assert path.read_bytes() == full

    def test_resume_refuses_unrecognisable_file(self, tmp_path):
        """A file with zero intact records and no vouching manifest may be
        anything the user points at — refuse, never truncate it."""
        path = tmp_path / "notes.txt"
        path.write_text("precious non-campaign content\n")
        with pytest.raises(ParameterError, match="no intact campaign records"):
            execute_campaign(make_config(path), workers=1, resume=True)
        assert path.read_text() == "precious non-campaign content\n"

    def test_resume_own_file_torn_in_first_record(self, finished):
        """Our own manifest vouches for a campaign interrupted before the
        first record completed: resume restarts from scratch cleanly."""
        path, full, cells = finished
        path.write_bytes(full.split(b"\n")[0][:30])  # torn record 0
        execution = execute_campaign(make_config(path), workers=1, resume=True)
        assert execution.report.cells_skipped == 0
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full

    def test_manifest_distinguishes_empirical_data(self, tmp_path):
        """Two Empirical laws with the same mean but different samples
        must not be interchangeable across a resume."""
        from repro.sim.distributions import Empirical

        path = tmp_path / "emp.jsonl"
        small = dict(m_values=(300.0,), phi_values=(1.0,), replicas=2)
        execute_campaign(
            make_config(path, distribution=Empirical([1.0, 2.0, 3.0]), **small),
            workers=1,
        )
        drifted = make_config(
            path, distribution=Empirical([2.0, 2.0, 2.0]), **small
        )
        with pytest.raises(ParameterError, match="distribution"):
            execute_campaign(drifted, workers=1, resume=True)

    def test_resume_without_manifest_still_works(self, finished):
        """Pre-manifest files resume via the per-record checks alone."""
        path, full, cells = finished
        path.with_name(path.name + ".manifest").unlink()
        lines = full.split(b"\n")
        path.write_bytes(b"\n".join(lines[:9]) + b"\n")
        execution = execute_campaign(make_config(path), workers=1, resume=True)
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full

    def test_invalid_workers_does_not_wipe_results(self, finished):
        path, full, _ = finished
        with pytest.raises(ParameterError, match="workers"):
            execute_campaign(make_config(path), workers=-1)
        with pytest.raises(ParameterError, match="chunk_size"):
            execute_campaign(make_config(path), workers=1, chunk_size=0)
        assert path.read_bytes() == full

    def test_without_resume_truncates(self, finished):
        path, full, _ = finished
        execution = execute_campaign(make_config(path), workers=1)
        assert execution.report.cells_run == 6
        assert path.read_bytes() == full

    @pytest.mark.campaign
    def test_parallel_resume_matches_serial_file(self, finished):
        path, full, cells = finished
        lines = full.split(b"\n")
        path.write_bytes(b"\n".join(lines[:9]) + b"\n")  # 2 cells + 1 run
        execution = execute_campaign(
            make_config(path), workers=2, resume=True
        )
        assert execution.report.cells_skipped == 2
        assert canonical(execution.cells) == canonical(cells)
        assert path.read_bytes() == full


class TestBackendInjection:
    def test_custom_backend_is_used(self, tmp_path):
        """The executor is backend-agnostic: anything honouring the
        CampaignBackend contract (chunks in any order, each exactly once)
        produces identical cells and — under the ordered sink — identical
        bytes, because the executor re-sequences emissions itself."""
        from repro.sim.backends import CampaignBackend, SerialBackend

        class ReversedBackend(CampaignBackend):
            """Completes chunks in reverse submission order."""

            def execute(self, config, chunks, controller):
                inner = SerialBackend()
                yield from reversed(list(inner.execute(config, chunks, controller)))

        a, b = tmp_path / "serial.jsonl", tmp_path / "reversed.jsonl"
        serial = execute_campaign(make_config(a), workers=1)
        rev = execute_campaign(
            make_config(b), backend=ReversedBackend(), chunk_size=1
        )
        assert canonical(serial.cells) == canonical(rev.cells)
        assert a.read_bytes() == b.read_bytes()


class TestReport:
    def test_describe(self, tmp_path):
        execution = execute_campaign(make_config(), workers=1)
        text = execution.report.describe()
        assert "6/6 cells run" in text and "workers=1" in text
        assert "sink=ordered" in text and "replicas=24" in text

    def test_replica_budget_counts_fresh_work_only(self, tmp_path):
        path = tmp_path / "c.jsonl"
        full = execute_campaign(make_config(path), workers=1)
        assert full.report.replicas_run == 24
        resumed = execute_campaign(make_config(path), workers=1, resume=True)
        assert resumed.report.replicas_run == 0

    def test_on_cell_callback_order(self):
        seen = []
        execute_campaign(
            make_config(), workers=1,
            on_cell=lambda c: seen.append((c.protocol, c.M)),
        )
        assert seen == [
            ("double-nbl", 300.0), ("double-nbl", 600.0), ("double-nbl", 1200.0),
            ("triple", 300.0), ("triple", 600.0), ("triple", 1200.0),
        ]

    def test_invalid_worker_and_chunk_counts(self):
        with pytest.raises(ParameterError, match="workers"):
            execute_campaign(make_config(), workers=-1)
        with pytest.raises(ParameterError, match="chunk_size"):
            execute_campaign(make_config(), workers=1, chunk_size=0)
