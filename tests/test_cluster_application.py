"""Cluster risk bookkeeping and application rollback semantics."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.application import Application
from repro.sim.cluster import Cluster, NodeState
from repro.sim.topology import contiguous_groups


@pytest.fixture
def pair_cluster() -> Cluster:
    return Cluster(contiguous_groups(4, 2))


@pytest.fixture
def triple_cluster() -> Cluster:
    return Cluster(contiguous_groups(6, 3))


class TestClusterFailures:
    def test_single_failure_not_fatal(self, pair_cluster):
        assert pair_cluster.on_failure(0, now=10.0, risk_duration=5.0) is False
        assert pair_cluster.states[0] is NodeState.DOWN
        assert pair_cluster.group_of(0).at_risk

    def test_buddy_failure_within_window_is_fatal(self, pair_cluster):
        pair_cluster.on_failure(0, now=10.0, risk_duration=5.0)
        assert pair_cluster.on_failure(1, now=12.0, risk_duration=5.0) is True

    def test_other_group_unaffected(self, pair_cluster):
        pair_cluster.on_failure(0, now=10.0, risk_duration=5.0)
        assert pair_cluster.on_failure(2, now=12.0, risk_duration=5.0) is False
        assert len(pair_cluster.at_risk_groups()) == 2

    def test_same_node_refailure_extends(self, pair_cluster):
        pair_cluster.on_failure(0, now=10.0, risk_duration=5.0)
        assert pair_cluster.on_failure(0, now=12.0, risk_duration=5.0) is False
        assert pair_cluster.group_of(0).risk_end == 17.0

    def test_failure_after_window_closed_not_fatal(self, pair_cluster):
        pair_cluster.on_failure(0, now=10.0, risk_duration=5.0)
        pair_cluster.on_risk_end(0, now=15.0)
        assert not pair_cluster.group_of(0).at_risk
        assert pair_cluster.states[0] is NodeState.HEALTHY
        assert pair_cluster.on_failure(1, now=16.0, risk_duration=5.0) is False

    def test_risk_time_accounting(self, pair_cluster):
        pair_cluster.on_failure(0, now=10.0, risk_duration=5.0)
        pair_cluster.on_risk_end(0, now=15.0)
        assert pair_cluster.group_of(0).risk_time == pytest.approx(5.0)

    def test_triple_second_failure_fatal_in_window(self, triple_cluster):
        # The cluster treats the group as fatally hit once a *different*
        # member fails during recovery (the DES chain semantics live in
        # the risk MC; the DES uses the conservative rule).
        triple_cluster.on_failure(0, now=0.0, risk_duration=10.0)
        assert triple_cluster.on_failure(1, now=5.0, risk_duration=10.0) is True

    def test_failure_counters(self, pair_cluster):
        pair_cluster.on_failure(0, now=0.0, risk_duration=1.0)
        pair_cluster.on_risk_end(0, now=1.0)
        pair_cluster.on_failure(3, now=2.0, risk_duration=1.0)
        assert pair_cluster.total_failures == 2
        assert pair_cluster.group_of(3).failures == 1

    def test_abort_windows(self, pair_cluster):
        pair_cluster.on_failure(0, now=0.0, risk_duration=100.0)
        pair_cluster.abort_risk_windows(now=10.0)
        assert not pair_cluster.group_of(0).at_risk
        assert pair_cluster.group_of(0).risk_time == pytest.approx(10.0)

    def test_validation(self, pair_cluster):
        with pytest.raises(ParameterError):
            pair_cluster.on_failure(99, 0.0, 1.0)
        with pytest.raises(ParameterError):
            pair_cluster.on_failure(0, 0.0, -1.0)
        with pytest.raises(SimulationError):
            pair_cluster.on_risk_end(0, 0.0)  # nothing recovering

    def test_describe(self, pair_cluster):
        assert "n=4" in pair_cluster.describe()


class TestApplication:
    def test_advance_and_complete(self):
        app = Application(work_target=10.0)
        app.advance(4.0)
        assert not app.complete
        assert app.remaining == pytest.approx(6.0)
        app.advance(6.0)
        assert app.complete

    def test_commit_default_level(self):
        app = Application(work_target=10.0)
        app.advance(4.0)
        app.commit_snapshot(now=1.0)
        assert app.committed_work == 4.0

    def test_commit_period_start_level(self):
        # Buddy checkpoints capture period-start state, not current.
        app = Application(work_target=100.0)
        app.advance(10.0)
        app.commit_snapshot(now=1.0, work_level=6.0)
        assert app.committed_work == 6.0

    def test_rollback_returns_lost(self):
        app = Application(work_target=100.0)
        app.advance(10.0)
        app.commit_snapshot(now=1.0, work_level=6.0)
        app.advance(5.0)
        lost = app.rollback()
        assert lost == pytest.approx(9.0)
        assert app.work_done == 6.0
        assert app.rollbacks == 1
        assert app.work_lost == pytest.approx(9.0)

    def test_rollback_without_commit_goes_to_zero(self):
        app = Application(work_target=10.0)
        app.advance(3.0)
        assert app.rollback() == pytest.approx(3.0)
        assert app.work_done == 0.0

    def test_commit_cannot_move_backwards(self):
        app = Application(work_target=10.0)
        app.advance(5.0)
        app.commit_snapshot(now=0.0)
        with pytest.raises(SimulationError):
            app.commit_snapshot(now=1.0, work_level=2.0)

    def test_commit_cannot_exceed_done(self):
        app = Application(work_target=10.0)
        app.advance(2.0)
        with pytest.raises(SimulationError):
            app.commit_snapshot(now=0.0, work_level=5.0)

    def test_negative_advance_rejected(self):
        app = Application(work_target=10.0)
        with pytest.raises(SimulationError):
            app.advance(-1.0)

    def test_time_to_complete(self):
        app = Application(work_target=10.0)
        app.advance(4.0)
        assert app.time_to_complete(0.5) == pytest.approx(12.0)
        assert app.time_to_complete(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ParameterError):
            Application(work_target=0.0)

    def test_commit_history(self):
        app = Application(work_target=10.0)
        app.advance(2.0)
        app.commit_snapshot(now=5.0)
        app.advance(3.0)
        app.commit_snapshot(now=9.0)
        assert app.commits == [(5.0, 2.0), (9.0, 5.0)]
