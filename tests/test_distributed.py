"""Distributed campaigns: queue protocol, work stealing, shard merging.

The contract under test: any number of workers joining the same queue
directory — concurrently, sequentially, or after one of them died
mid-chunk — produce shards whose merge is *byte-identical* to a
single-machine framed run of the same configuration.  Determinism (every
replica a pure function of campaign seed and grid coordinates) is what
makes the crash story simple: a stolen chunk's re-execution duplicates
results instead of corrupting them, and the merge verifies exactly that.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.errors import ParameterError
from repro.sim.adaptive import AdaptiveCI, FixedReplicas
from repro.sim.campaign import CampaignConfig
from repro.sim.distributed import (
    DistributedBackend,
    default_worker_id,
    ensure_queue,
    merge_shards,
    queue_status,
    shard_path,
)
from repro.sim.executor import _campaign_fingerprint, execute_campaign
from repro.sim.sinks import WorkerShardSink


def make_config(results_path=None, **overrides) -> CampaignConfig:
    """2 protocols × 2 M × 1 φ × 2 replicas: four fast grid cells."""
    fields = dict(
        protocols=(DOUBLE_NBL, TRIPLE),
        base_params=scenarios.BASE.parameters(M=600.0, n=12),
        m_values=(300.0, 600.0),
        phi_values=(1.0,),
        work_target=900.0,
        replicas=2,
        seed=2026,
        share_traces=True,
        results_path=results_path,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


def framed_reference(path, **overrides) -> bytes:
    """The single-machine framed file every merge must reproduce."""
    execute_campaign(make_config(path, **overrides), workers=1, sink="framed")
    return path.read_bytes()


def run_worker(queue, worker_id, *, lease=5.0, poll=0.01, **overrides):
    return execute_campaign(
        make_config(**overrides), sink="framed", queue=queue,
        worker_id=worker_id, lease_timeout=lease, poll_interval=poll,
    )


class TestQueueLifecycle:
    def test_single_worker_completes_and_merge_matches_serial(self, tmp_path):
        ref = framed_reference(tmp_path / "ref.jsonl")
        queue = tmp_path / "queue"
        execution = run_worker(queue, "w1")
        assert execution.report.cells_run == 4
        assert queue_status(queue).complete
        merged = tmp_path / "merged.jsonl"
        report = merge_shards(queue, merged)
        assert (report.cells, report.duplicate_cells) == (4, 0)
        assert merged.read_bytes() == ref

    def test_late_worker_finds_nothing_to_do(self, tmp_path):
        queue = tmp_path / "queue"
        run_worker(queue, "w1")
        execution = run_worker(queue, "w2")
        assert execution.report.cells_run == 0
        assert execution.cells == ()
        assert execution.report.cells_skipped == 4

    def test_merged_file_resumes_as_complete(self, tmp_path):
        queue = tmp_path / "queue"
        run_worker(queue, "w1")
        merged = tmp_path / "merged.jsonl"
        merge_shards(queue, merged)
        resumed = execute_campaign(
            make_config(merged), workers=1, sink="framed", resume=True
        )
        assert resumed.report.cells_run == 0
        assert resumed.report.cells_skipped == 4

    def test_manifest_refuses_config_drift(self, tmp_path):
        queue = tmp_path / "queue"
        run_worker(queue, "w1")
        with pytest.raises(ParameterError, match="different campaign"):
            run_worker(queue, "w2", seed=9999)

    def test_queue_status_counts(self, tmp_path):
        queue = tmp_path / "queue"
        config = make_config()
        ensure_queue(
            queue, _campaign_fingerprint(config, "framed", FixedReplicas(2)),
            n_chunks=4, chunk_size=1, n_cells=4,
        )
        status = queue_status(queue)
        assert (status.pending, status.claimed, status.done) == (4, 0, 0)
        assert not status.complete
        backend = DistributedBackend(queue, "w1", lease_timeout=5.0)
        assert backend._try_claim_pending() is not None
        status = queue_status(queue)
        assert (status.pending, status.claimed, status.done) == (3, 1, 0)

    def test_initialisation_race_is_detected(self, tmp_path, monkeypatch):
        """If a rival worker's manifest for a *different* campaign wins
        the initialisation race, the loser must fail fast instead of
        silently working a foreign queue."""
        from repro.sim import distributed as dist

        original = dist._atomic_write

        def rival_wins(path, text):
            if path.name == "manifest.json":
                text = text.replace("2026", "1111")  # rival's config
            original(path, text)

        monkeypatch.setattr(dist, "_atomic_write", rival_wins)
        config = make_config()
        with pytest.raises(ParameterError, match="another worker"):
            ensure_queue(
                tmp_path / "queue",
                _campaign_fingerprint(config, "framed", FixedReplicas(2)),
                n_chunks=4, chunk_size=1, n_cells=4,
            )

    def test_heartbeat_fires_per_replica(self):
        """The lease must stay alive inside long cells: run_cell invokes
        the heartbeat after every replica, not just per cell."""
        from repro.sim.backends import run_cell
        from repro.sim.executor import plan_cells

        config = make_config(replicas=3)
        plan = plan_cells(config)[0]
        beats: list[int] = []
        results = run_cell(
            config, plan, FixedReplicas(3), {},
            heartbeat=lambda: beats.append(1),
        )
        assert len(results) == 3
        assert len(beats) == 3

    def test_worker_id_validation(self, tmp_path):
        with pytest.raises(ParameterError, match="worker id"):
            DistributedBackend(tmp_path, "bad/id")
        with pytest.raises(ParameterError, match="worker id"):
            shard_path(tmp_path, "a b")
        assert default_worker_id()  # well-formed by construction
        shard_path(tmp_path, default_worker_id())

    def test_default_worker_id_keeps_suffix_under_long_hostnames(
        self, monkeypatch
    ):
        """Two workers must never share an id (= a shard): the pid and
        nonce survive truncation, the hostname gives."""
        import socket

        monkeypatch.setattr(socket, "gethostname", lambda: "h" * 100)
        worker_id = default_worker_id()
        assert len(worker_id) <= 64
        assert f"-{os.getpid()}-" in worker_id
        shard_path("/tmp", worker_id)  # still a valid id
        # Cloned hosts (same hostname, same pid 1) still get distinct ids.
        assert default_worker_id() != worker_id

    def test_claiming_a_stale_ticket_freshens_the_lease(self, tmp_path):
        """A fleet joining a queue initialised long ago must not see
        freshly claimed chunks as instantly steal-eligible (tickets keep
        their creation mtime through the claiming rename)."""
        config = make_config()
        queue = tmp_path / "queue"
        ensure_queue(
            queue, _campaign_fingerprint(config, "framed", FixedReplicas(2)),
            n_chunks=4, chunk_size=1, n_cells=4,
        )
        past = time.time() - 3600.0
        for ticket in (queue / "pending").iterdir():
            os.utime(ticket, (past, past))
        backend = DistributedBackend(queue, "w1", lease_timeout=30.0)
        _, claim = backend._try_claim_pending()
        assert time.time() - claim.stat().st_mtime < 30.0

    def test_executor_rejects_conflicting_arguments(self, tmp_path):
        queue = tmp_path / "queue"
        with pytest.raises(ParameterError, match="sink='framed'"):
            execute_campaign(make_config(), queue=queue)
        with pytest.raises(ParameterError, match="resumable"):
            execute_campaign(make_config(), queue=queue, sink="framed",
                             resume=True)
        with pytest.raises(ParameterError, match="shards"):
            execute_campaign(make_config(tmp_path / "r.jsonl"), queue=queue,
                             sink="framed")
        with pytest.raises(ParameterError, match="workers"):
            execute_campaign(make_config(), queue=queue, sink="framed",
                             workers=4)
        backend = DistributedBackend(queue, "w1")
        with pytest.raises(ParameterError, match="mutually exclusive"):
            execute_campaign(make_config(), queue=queue, sink="framed",
                             backend=backend)


class TestWorkStealing:
    """The fault-injection story: a dead worker's chunk is re-claimed."""

    def _queue_with_dead_worker(self, tmp_path, *, dead_shard="cell0"):
        """A queue where 'dead' claimed chunk 0 (cells 0+1), appended cell
        0, and died mid-chunk: the claim file is there, back-dated past
        any lease, with no done marker.  ``dead_shard`` shapes the crash
        damage in its shard:

        * ``"cell0"`` — died cleanly between cell appends;
        * ``"torn_start"`` — died a few bytes into cell 1's append;
        * ``"half_cell"`` — died mid-append with cell 1's first replica
          already intact (an incomplete cell group).
        """
        ref_path = tmp_path / "ref.jsonl"
        ref = framed_reference(ref_path)
        lines = ref.decode().splitlines()
        queue = tmp_path / "queue"
        config = make_config()
        ensure_queue(
            queue, _campaign_fingerprint(config, "framed", FixedReplicas(2)),
            n_chunks=2, chunk_size=2, n_cells=4,
        )
        dead = DistributedBackend(queue, "dead", lease_timeout=5.0)
        chunk, claim = dead._try_claim_pending()
        # The rotation offset is worker-dependent; steer to chunk 0.
        if chunk != 0:
            claim0 = dead._claim_path(0, 0)
            os.rename(queue / "pending" / "chunk-00000.json", claim0)
            os.rename(claim, queue / "pending" / f"chunk-{chunk:05d}.json")
            chunk, claim = 0, claim0
        shard = shard_path(queue, "dead")
        shard.parent.mkdir(parents=True, exist_ok=True)
        body = lines[0] + "\n" + lines[1] + "\n"  # cell 0, replicas 0-1
        if dead_shard == "torn_start":
            body += lines[2][:40]
        elif dead_shard == "half_cell":
            body += lines[2] + "\n" + lines[3][:40]
        shard.write_text(body)
        past = time.time() - 3600.0
        os.utime(claim, (past, past))
        return queue, config, ref, claim

    def test_fresh_lease_is_not_stolen(self, tmp_path):
        queue, config, _, claim = self._queue_with_dead_worker(tmp_path)
        os.utime(claim)  # resurrect the lease
        thief = DistributedBackend(queue, "thief", lease_timeout=60.0)
        assert thief._try_steal_expired() is None

    def test_expired_lease_is_stolen_once(self, tmp_path):
        queue, config, _, claim = self._queue_with_dead_worker(tmp_path)
        thief = DistributedBackend(queue, "thief", lease_timeout=5.0)
        stolen = thief._try_steal_expired()
        assert stolen is not None
        chunk, fresh = stolen
        assert chunk == 0
        assert not claim.exists()           # the stale claim was renamed
        assert ".g1.thief." in fresh.name   # generation bumped, new owner
        assert time.time() - fresh.stat().st_mtime < 5.0  # lease restarted
        # A second thief has nothing to steal: the fresh lease is live.
        assert DistributedBackend(
            queue, "thief2", lease_timeout=5.0
        )._try_steal_expired() is None

    @pytest.mark.parametrize("dead_shard",
                             ["cell0", "torn_start", "half_cell"])
    def test_live_worker_recovers_dead_workers_chunk(self, tmp_path,
                                                     dead_shard):
        """End to end: lease expires, a live worker re-claims and re-runs
        the chunk, and the merged file is byte-identical to the serial
        framed run — the dead worker's partial shard (including a torn
        trailing write) changes nothing."""
        queue, config, ref, _ = self._queue_with_dead_worker(
            tmp_path, dead_shard=dead_shard
        )
        execution = execute_campaign(
            config, sink="framed", queue=queue, worker_id="live",
            chunk_size=2, lease_timeout=5.0, poll_interval=0.01,
        )
        assert execution.report.cells_run == 4  # both chunks, incl. stolen
        assert queue_status(queue).complete
        done = json.loads(
            (queue / "done" / "chunk-00000.json").read_text()
        )
        assert done["worker"] == "live"
        merged = tmp_path / "merged.jsonl"
        report = merge_shards(queue, merged)
        assert merged.read_bytes() == ref
        assert report.duplicate_cells >= 1  # cell 0 exists in both shards

    def test_partial_merge_then_resume_completes(self, tmp_path):
        """A queue abandoned mid-campaign merges (with --partial
        semantics) into a file that one machine can finish via the
        ordinary resume path, landing byte-identical to serial."""
        queue, config, ref, _ = self._queue_with_dead_worker(
            tmp_path, dead_shard="half_cell"
        )
        with pytest.raises(ParameterError, match="incomplete"):
            merge_shards(queue, tmp_path / "nope.jsonl")
        partial = tmp_path / "partial.jsonl"
        report = merge_shards(queue, partial, require_complete=False)
        assert report.cells == 1        # cell 0 survived the dead shard
        assert report.incomplete_cells == 1  # torn cell 1 dropped
        resumed = execute_campaign(
            make_config(partial), workers=1, sink="framed", resume=True
        )
        assert resumed.report.cells_skipped == 1
        assert resumed.report.cells_run == 3
        assert partial.read_bytes() == ref

    def test_same_shard_duplicate_is_verified_and_collapsed(self, tmp_path):
        """A worker that restarts and re-claims its own chunk appends a
        cell its shard already holds: the merge must verify the copies
        match, count the duplication, and emit the cell once."""
        ref = framed_reference(tmp_path / "ref.jsonl")
        queue = tmp_path / "queue"
        run_worker(queue, "w1")
        shard = shard_path(queue, "w1")
        lines = shard.read_text().splitlines()
        redo = []
        for seq, line in enumerate(lines[:2], start=len(lines)):
            frame = json.loads(line)
            frame["seq"] = seq  # the rejoined sink continues its counter
            redo.append(json.dumps(frame, sort_keys=True))
        shard.write_text("\n".join(lines + redo) + "\n")

        merged = tmp_path / "merged.jsonl"
        report = merge_shards(queue, merged)
        assert report.duplicate_cells == 1
        assert merged.read_bytes() == ref

        # ...but a *diverging* same-shard copy is corruption: refuse.
        tampered = json.loads(redo[0])
        tampered["payload"]["payload"]["makespan"] += 12345.0
        shard.write_text("\n".join(
            lines + [json.dumps(tampered, sort_keys=True), redo[1]]
        ) + "\n")
        with pytest.raises(ParameterError, match="twice in this shard"):
            merge_shards(queue, tmp_path / "nope.jsonl")

    def test_merge_refuses_diverged_shards(self, tmp_path):
        """Two shards disagreeing about the same cell cannot happen under
        one configuration — the merge must refuse, not pick one."""
        queue, config, ref, _ = self._queue_with_dead_worker(tmp_path)
        execute_campaign(
            config, sink="framed", queue=queue, worker_id="live",
            chunk_size=2, lease_timeout=5.0, poll_interval=0.01,
        )
        # Tamper with the dead worker's copy of cell 0.
        shard = shard_path(queue, "dead")
        frames = [json.loads(line) for line in
                  shard.read_text().splitlines()]
        frames[0]["payload"]["payload"]["failures"] += 1
        shard.write_text("".join(
            json.dumps(f, sort_keys=True) + "\n" for f in frames
        ))
        with pytest.raises(ParameterError, match="disagrees"):
            merge_shards(queue, tmp_path / "merged.jsonl")


class TestWorkerShardSink:
    def test_fresh_shard_starts_empty(self, tmp_path):
        shard = tmp_path / "w.jsonl"
        sink = WorkerShardSink(shard)
        sink.begin()
        assert shard.exists() and sink._seq == 0

    def test_sequence_continues_across_restarts(self, tmp_path):
        from repro.sim.results import DesResult

        def res(i):
            return DesResult(
                status="completed", makespan=1000.0 + i, work_target=900.0,
                work_done=900.0, failures=i, rollbacks=0, work_lost=0.0,
                commits=3, risk_time=0.0, meta={"seed": i},
            )

        shard = tmp_path / "w.jsonl"
        sink = WorkerShardSink(shard)
        sink.begin()

        class Plan:
            index = 0

        sink.emit(Plan, [res(0), res(1)])
        intact = shard.read_bytes()
        shard.write_bytes(intact + intact[:25])  # torn next append
        rejoined = WorkerShardSink(shard)
        rejoined.begin()
        assert shard.read_bytes() == intact  # torn tail dropped
        assert rejoined._seq == 2            # sequence resumes after it

    def test_rejects_foreign_sequence(self, tmp_path):
        shard = tmp_path / "w.jsonl"
        from repro.sim.results import DesResult

        result = DesResult(
            status="completed", makespan=1000.0, work_target=900.0,
            work_done=900.0, failures=0, rollbacks=0, work_lost=0.0,
            commits=1, risk_time=0.0,
        )
        shard.write_text(
            repro_io.dump_frame(result, cell=0, replica=0, seq=7) + "\n"
        )
        with pytest.raises(ParameterError, match="sequence"):
            WorkerShardSink(shard).begin()

    def test_recover_is_not_a_shard_operation(self, tmp_path):
        with pytest.raises(ParameterError, match="done markers"):
            WorkerShardSink(tmp_path / "w.jsonl").recover(
                None, [], FixedReplicas(1), True
            )


class TestAdaptiveDistributed:
    def test_adaptive_queue_merges_like_serial(self, tmp_path):
        controller = AdaptiveCI(max_replicas=8, tolerance=0.03,
                                min_replicas=3, batch=1)
        config = make_config(
            tmp_path / "ref.jsonl", m_values=(300.0, 3600.0), replicas=8
        )
        execute_campaign(config, workers=1, sink="framed",
                         controller=controller)
        ref = (tmp_path / "ref.jsonl").read_bytes()
        queue = tmp_path / "queue"
        execute_campaign(
            make_config(m_values=(300.0, 3600.0), replicas=8),
            sink="framed", queue=queue, worker_id="w1",
            controller=controller, lease_timeout=5.0, poll_interval=0.01,
        )
        merged = tmp_path / "merged.jsonl"
        merge_shards(queue, merged)
        assert merged.read_bytes() == ref


@pytest.mark.campaign
class TestMultiProcessAcceptance:
    """Two independently started OS processes against one queue."""

    def _cli(self, *argv):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *argv],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def test_two_processes_complete_a_preset_grid(self, tmp_path):
        queue = tmp_path / "queue"
        workers = [
            self._cli("campaign", "--preset", "smoke", "--queue",
                      str(queue), "--worker-id", f"proc{i}",
                      "--lease", "30", "--poll", "0.05")
            for i in (1, 2)
        ]
        for proc in workers:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        assert queue_status(queue).complete

        merged = tmp_path / "merged.jsonl"
        proc = self._cli("campaign", "merge", "--queue", str(queue),
                         "--out", str(merged))
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err

        ref = tmp_path / "ref.jsonl"
        config = scenarios.get_campaign_preset("smoke").campaign_config(
            results_path=ref
        )
        execute_campaign(config, workers=1, sink="framed")
        assert merged.read_bytes() == ref.read_bytes()

        # The merged file resumes as complete and reports identically.
        resumed = execute_campaign(
            scenarios.get_campaign_preset("smoke").campaign_config(
                results_path=merged
            ),
            workers=1, sink="framed", resume=True,
        )
        assert resumed.report.cells_run == 0
        from repro.experiments.report import campaign_report

        report_merged = campaign_report(merged)
        report_ref = campaign_report(ref)
        assert report_merged.replace(merged.name, "X") == \
            report_ref.replace(ref.name, "X")
