"""Network/storage parameter derivation (Table I values from hardware)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.sim.network import Link, blocking_transfer_time, effective_alpha
from repro.sim.storage import NVME_EXA, SSD_2013, StorageDevice, local_checkpoint_time

MB = 10**6


class TestLink:
    def test_transfer_time(self):
        link = Link(bandwidth=128 * MB)
        assert link.transfer_time(512 * MB) == pytest.approx(4.0)

    def test_latency_added(self):
        link = Link(bandwidth=128 * MB, latency=0.5)
        assert link.transfer_time(512 * MB) == pytest.approx(4.5)

    def test_sharing(self):
        link = Link(bandwidth=128 * MB)
        assert link.transfer_time(512 * MB, concurrent=2) == pytest.approx(8.0)

    def test_full_duplex_exchange(self):
        link = Link(bandwidth=128 * MB, full_duplex=True)
        assert link.exchange_time(512 * MB) == pytest.approx(4.0)

    def test_half_duplex_exchange(self):
        link = Link(bandwidth=128 * MB, full_duplex=False)
        assert link.exchange_time(512 * MB) == pytest.approx(8.0)

    def test_base_scenario_r(self):
        # Table I: R = 4 s for 512 MB — implies ≈128 MB/s of buddy bandwidth.
        link = Link(bandwidth=128 * MB)
        assert blocking_transfer_time(512 * MB, link) == pytest.approx(4.0)

    @pytest.mark.parametrize("kwargs", [dict(bandwidth=0), dict(bandwidth=1, latency=-1)])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            Link(**kwargs)

    def test_transfer_validation(self):
        link = Link(bandwidth=1.0)
        with pytest.raises(ParameterError):
            link.transfer_time(-1.0)
        with pytest.raises(ParameterError):
            link.transfer_time(1.0, concurrent=0)


class TestAlphaHeuristic:
    def test_headroom_gives_positive_alpha(self):
        link = Link(bandwidth=128 * MB)
        alpha = effective_alpha(link, compute_memory_bandwidth=10e9,
                                checkpoint_bytes=512 * MB)
        assert alpha > 1.0

    def test_saturated_bus_gives_small_alpha(self):
        link = Link(bandwidth=10e9)
        alpha = effective_alpha(link, compute_memory_bandwidth=1e9,
                                checkpoint_bytes=512 * MB, max_alpha=100.0)
        assert alpha < 1.0

    def test_capped(self):
        link = Link(bandwidth=1 * MB)
        alpha = effective_alpha(link, compute_memory_bandwidth=1e12,
                                checkpoint_bytes=512 * MB, max_alpha=10.0)
        assert alpha == 10.0

    def test_validation(self):
        link = Link(bandwidth=1.0)
        with pytest.raises(ParameterError):
            effective_alpha(link, 0.0, 1.0)
        with pytest.raises(ParameterError):
            effective_alpha(link, 1.0, 0.0)


class TestStorage:
    def test_base_delta_from_ssd(self):
        # Table I: δ = 2 s for 512 MB at SSD speed.
        assert local_checkpoint_time(512 * MB, SSD_2013) == pytest.approx(2.0)

    def test_exa_device(self):
        # 500 Gb/s bus: 64 GB/core... per-node image in tens of seconds.
        t = local_checkpoint_time(1.875e12, NVME_EXA)
        assert t == pytest.approx(30.0)

    def test_amplification(self):
        dev = StorageDevice("x", write_bandwidth=100.0, write_amplification=2.0)
        assert dev.write_time(100.0) == pytest.approx(2.0)

    def test_latency(self):
        dev = StorageDevice("x", write_bandwidth=100.0, latency=0.25)
        assert dev.write_time(100.0) == pytest.approx(1.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(write_bandwidth=0.0),
            dict(write_bandwidth=1.0, latency=-1.0),
            dict(write_bandwidth=1.0, write_amplification=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            StorageDevice("bad", **kwargs)

    def test_write_time_validation(self):
        with pytest.raises(ParameterError):
            SSD_2013.write_time(-1.0)
