"""Risk windows and success probabilities (Eqs. 11, 12, 16)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DOUBLE_BOF,
    DOUBLE_NBL,
    TRIPLE,
    TRIPLE_BOF,
    risk_window,
    scenarios,
    success_probability,
    success_probability_base,
    fatal_failure_probability,
)
from repro.core.risk import expected_fatal_count, group_fatal_probability
from repro.errors import ParameterError

DAY = 86400.0


@pytest.fixture
def base_1min():
    return scenarios.BASE.parameters(M="1min")


class TestPaperFormulas:
    def test_eq11_double(self, base_1min):
        # Hand-expanded: (1 − 2λ²T·Risk)^(n/2).
        T = 10 * DAY
        lam = base_1min.lam
        risk = 48.0
        expected = (1 - 2 * lam**2 * T * risk) ** (base_1min.n / 2)
        got = success_probability(DOUBLE_NBL, base_1min, 0.0, T)
        assert got == pytest.approx(expected, rel=1e-9)

    def test_eq16_triple(self, base_1min):
        T = 10 * DAY
        lam = base_1min.lam
        risk = 92.0
        expected = (1 - 6 * lam**3 * T * risk**2) ** (base_1min.n / 3)
        got = success_probability(TRIPLE, base_1min, 0.0, T)
        assert got == pytest.approx(expected, rel=1e-9)

    def test_eq12_base(self, base_1min):
        t_base = DAY
        lam = base_1min.lam
        expected = (1 - lam * t_base) ** base_1min.n
        assert success_probability_base(base_1min, t_base) == pytest.approx(
            expected, rel=1e-9
        )

    def test_base_beyond_validity_is_zero(self, base_1min):
        # λ·T ≥ 1 → the first-order survivor count hits zero.
        t_huge = 2 * base_1min.n * base_1min.M  # λT = 2
        assert success_probability_base(base_1min, t_huge) == 0.0

    def test_fig6_anchors(self, base_1min):
        """The §VI-A magnitudes checked by hand in DESIGN.md."""
        T = 10 * DAY
        assert success_probability(DOUBLE_NBL, base_1min, 0.0, T) == pytest.approx(
            0.329, abs=0.002
        )
        assert success_probability(DOUBLE_BOF, base_1min, 0.0, T) == pytest.approx(
            0.831, abs=0.002
        )
        assert success_probability(TRIPLE, base_1min, 0.0, T) == pytest.approx(
            0.99937, abs=0.0002
        )

    def test_fig9_anchor_exa(self):
        params = scenarios.EXA.parameters(M=60)
        T = 60 * 7 * DAY
        p_nbl = success_probability(DOUBLE_NBL, params, 0.0, T)
        p_bof = success_probability(DOUBLE_BOF, params, 0.0, T)
        p_tri = success_probability(TRIPLE, params, 0.0, T)
        assert p_nbl < 1e-3  # NBL essentially never survives
        assert 0.1 < p_bof < 0.3
        assert p_tri > 0.999


class TestMethodsAgree:
    @given(
        m_minutes=st.floats(min_value=1.0, max_value=30.0),
        t_days=st.floats(min_value=1.0, max_value=30.0),
    )
    @settings(max_examples=40)
    def test_first_order_vs_exponential(self, m_minutes, t_days):
        params = scenarios.BASE.parameters(M=m_minutes * 60)
        T = t_days * DAY
        p_paper = success_probability(DOUBLE_NBL, params, 0.0, T)
        p_exp = success_probability(
            DOUBLE_NBL, params, 0.0, T, method="exponential"
        )
        # Identical to first order in λ·Risk; λ·Risk < 1e-3 on this grid.
        assert p_exp == pytest.approx(p_paper, abs=2e-3)

    def test_exponential_always_valid(self, base_1min):
        # Far beyond the first-order domain the exponential method still
        # returns a probability.
        t = 1e9
        p = success_probability(DOUBLE_NBL, base_1min, 0.0, t, method="exponential")
        assert 0.0 <= p <= 1.0

    def test_unknown_method(self, base_1min):
        with pytest.raises(ParameterError):
            success_probability(DOUBLE_NBL, base_1min, 0.0, 100.0, method="magic")


class TestOrderings:
    """Protocol risk orderings the paper's §VI reads off the figures."""

    def test_bof_safer_than_nbl(self, base_1min):
        for t_days in (1, 10, 30):
            p_nbl = success_probability(DOUBLE_NBL, base_1min, 0.0, t_days * DAY)
            p_bof = success_probability(DOUBLE_BOF, base_1min, 0.0, t_days * DAY)
            assert p_bof >= p_nbl

    def test_triple_safest(self, base_1min):
        for t_days in (1, 10, 30):
            p_bof = success_probability(DOUBLE_BOF, base_1min, 0.0, t_days * DAY)
            p_tri = success_probability(TRIPLE, base_1min, 0.0, t_days * DAY)
            assert p_tri >= p_bof

    def test_triple_bof_beats_triple(self, base_1min):
        T = 30 * DAY
        p_tri = success_probability(TRIPLE, base_1min, 0.0, T)
        p_tbof = success_probability(TRIPLE_BOF, base_1min, 0.0, T)
        assert p_tbof >= p_tri

    def test_success_decreases_with_t(self, base_1min, figure_protocol):
        ts = np.linspace(DAY, 30 * DAY, 10)
        p = np.asarray(success_probability(figure_protocol, base_1min, 0.0, ts))
        assert np.all(np.diff(p) <= 1e-15)

    def test_success_increases_with_m(self, figure_protocol):
        ps = []
        for m in (30.0, 60.0, 300.0, 1800.0):
            params = scenarios.BASE.parameters(M=m)
            ps.append(success_probability(figure_protocol, params, 0.0, 10 * DAY))
        assert all(b >= a for a, b in zip(ps, ps[1:]))


class TestHelpers:
    def test_risk_window_values(self, base_1min):
        assert risk_window(DOUBLE_NBL, base_1min, 0.0) == pytest.approx(48.0)
        assert risk_window(DOUBLE_BOF, base_1min, 0.0) == pytest.approx(8.0)

    def test_fatal_complement(self, base_1min):
        T = 10 * DAY
        p = success_probability(DOUBLE_NBL, base_1min, 0.0, T)
        q = fatal_failure_probability(DOUBLE_NBL, base_1min, 0.0, T)
        assert p + q == pytest.approx(1.0)

    def test_group_probability_first_order(self, base_1min):
        T = 10 * DAY
        lam = base_1min.lam
        got = group_fatal_probability(DOUBLE_NBL, base_1min, 0.0, T)
        assert got == pytest.approx(2 * lam**2 * T * 48.0, rel=1e-12)

    def test_expected_fatal_count_links_to_success(self, base_1min):
        # P_success ≈ exp(−E[#fatal]) when probabilities are small.
        T = 10 * DAY
        count = expected_fatal_count(DOUBLE_NBL, base_1min, 0.0, T)
        p = success_probability(DOUBLE_NBL, base_1min, 0.0, T)
        assert p == pytest.approx(math.exp(-count), rel=2e-3)

    def test_t_array_broadcast(self, base_1min):
        ts = np.linspace(DAY, 30 * DAY, 7)
        out = success_probability(DOUBLE_NBL, base_1min, 0.0, ts)
        assert np.asarray(out).shape == (7,)

    def test_rejects_negative_t(self, base_1min):
        with pytest.raises(ParameterError):
            success_probability(DOUBLE_NBL, base_1min, 0.0, -1.0)
        with pytest.raises(ParameterError):
            success_probability_base(base_1min, -1.0)
