"""Docstring examples stay executable (doctest sweep over key modules)."""

from __future__ import annotations

import doctest

import pytest

import repro.sim.engine
import repro.sim.rng
import repro.units

MODULES = [repro.units, repro.sim.engine, repro.sim.rng]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
