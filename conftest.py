"""Root pytest configuration: tier gating for slow / multi-process tests.

Tier-1 (``pytest -x -q``) must stay fast, so tests marked ``slow`` or
``campaign`` (multi-process campaign-engine runs, large grids) are skipped
by default.  A full run enables them with::

    pytest --run-slow

Markers are registered in ``pytest.ini``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' or 'campaign'",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="slow/campaign test: pass --run-slow to run")
    for item in items:
        if "slow" in item.keywords or "campaign" in item.keywords:
            item.add_marker(skip)
