#!/usr/bin/env python3
"""Quickstart: evaluate buddy checkpointing protocols on the paper's scenarios.

Covers the core API in ~60 lines:
  * build platform parameters from a scenario (Table I),
  * compute optimal periods, waste and risk for every protocol,
  * convert a base execution time into an expected makespan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import PROTOCOLS, optimal_period, risk_window, success_probability
from repro.core.waste import execution_time, waste_at_optimum
from repro.units import format_time


def main() -> None:
    # The paper's Base cluster (Ni et al.'s values) with a 7-hour MTBF.
    params = repro.scenarios.BASE.parameters(M="7h")
    phi = 0.4  # overhead choice: 10% of R
    print(f"platform: {params.describe()}")
    print(f"overhead phi = {phi:g}s -> exchange window theta = "
          f"{params.theta(phi):g}s\n")

    header = (f"{'protocol':16s} {'P* [s]':>10s} {'waste':>9s} "
              f"{'waste_ff':>9s} {'waste_fail':>10s} {'risk [s]':>9s}")
    print(header)
    print("-" * len(header))
    for key, spec in PROTOCOLS.items():
        period = optimal_period(spec, params, phi)
        bd = waste_at_optimum(spec, params, phi)
        print(f"{key:16s} {period:10.2f} "
              f"{float(np.asarray(bd.total)):9.5f} "
              f"{float(np.asarray(bd.fault_free)):9.5f} "
              f"{float(np.asarray(bd.failure)):10.5f} "
              f"{risk_window(spec, params, phi):9.1f}")

    # How long does a 24-hour application actually take?
    t_base = 24 * 3600.0
    print(f"\nexpected makespan of a 24h application (T_base -> T):")
    for key in ("double-blocking", "double-nbl", "triple"):
        t = execution_time(key, params, phi, t_base)
        print(f"  {key:16s} {format_time(round(t))}")

    # And will it survive? Probability of no fatal failure over one month
    # of platform exploitation in a harsher regime (M = 2 min).
    harsh = repro.scenarios.BASE.parameters(M="2min")
    month = 30 * 86400.0
    print(f"\nP(no fatal failure) over 30 days at M=2min "
          f"(theta = (alpha+1)R, worst case):")
    for key in ("double-nbl", "double-bof", "triple"):
        p = success_probability(key, harsh, 0.0, month)
        print(f"  {key:16s} {p:.6f}")
    print("\n=> the paper's headline: TRIPLE cuts fault-free waste AND "
          "fatal-failure risk at the same memory budget.")


if __name__ == "__main__":
    main()
