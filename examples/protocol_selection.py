#!/usr/bin/env python3
"""Choosing a checkpointing configuration: the bi-criteria workflow.

The paper's central message is that protocols must be judged on waste
*and* risk together.  This example runs the full decision workflow an
operator would:

 1. enumerate all (protocol, φ) operating points on the platform,
 2. extract the Pareto-efficient set,
 3. pick configurations under a success-probability floor and under a
    waste ceiling,
 4. sanity-check the group size with the generalised k-buddy model
    (would quadruples buy anything?), and
 5. quantify the model error bar with the higher-order (renewal-form)
    waste expression.

Run:  python examples/protocol_selection.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import TRIPLE
from repro.analysis.pareto import (
    candidate_points,
    cheapest_safe,
    pareto_front,
    safest_within,
)
from repro.core.exact import waste_gap, waste_renewal_at_optimum
from repro.core.kbuddy import recommend_k
from repro.core.waste import waste_at_optimum

DAY = 86400.0


def main() -> None:
    # A mid-size cluster with a 10-minute platform MTBF, one-month runs.
    params = repro.scenarios.BASE.parameters(M="10min", n=10320)
    T = 30 * DAY
    print(f"platform: {params.describe()}; campaign length 30 days\n")

    # 1–2. candidates and efficient set -------------------------------
    points = candidate_points(params, T, num_phi=33)
    front = pareto_front(points)
    print(f"{len(points)} operating points -> {len(front)} Pareto-efficient:")
    for p in front:
        print(f"   {p.protocol:12s} phi/R={p.phi / params.R:5.2f} "
              f"waste={p.waste:.4f}  P(fatal)={p.fatal_probability:.2e}")

    # 3. constrained picks ---------------------------------------------
    safe = cheapest_safe(points, min_success=0.9999)
    fast = safest_within(points, max_waste=0.15)
    print(f"\ncheapest with P(success) >= 99.99%: {safe.protocol} "
          f"(phi/R={safe.phi / params.R:.2f}, waste {safe.waste:.4f})")
    print(f"safest with waste <= 15%:           {fast.protocol} "
          f"(phi/R={fast.phi / params.R:.2f}, "
          f"P(fatal)={fast.fatal_probability:.2e})")

    # 4. group-size check ------------------------------------------------
    k, table = recommend_k(params, phi=0.4, T=T, target_success=0.995)
    print(f"\nk-buddy check (phi/R=0.1, target 99.5%): recommend k = {k}")
    for kk, row in table.items():
        print(f"   k={kk}: waste {row['waste']:.4f}, "
              f"success {row['success']:.6f}, "
              f"{row['images']:.0f} image(s)/node")

    # 5. model error bar -------------------------------------------------
    phi = safe.phi if safe else 0.4
    w_paper = float(np.asarray(waste_at_optimum(TRIPLE, params, phi).total))
    w_renew = float(np.asarray(waste_renewal_at_optimum(TRIPLE, params, phi)))
    gap = float(np.asarray(waste_gap(TRIPLE, params, phi,
                                     repro.optimal_period(TRIPLE, params, phi))))
    print(f"\nmodel error bar at the chosen point (TRIPLE, "
          f"phi/R={phi / params.R:.2f}):")
    print(f"   paper first-order waste : {w_paper:.5f}")
    print(f"   renewal-form waste      : {w_renew:.5f}")
    verdict = ("negligible" if gap < 1e-3 else
               "worth an event-simulation check (F/M is sizeable here)")
    print(f"   second-order gap        : {gap:.2e} — {verdict}")
    print("\n=> on both criteria the efficient configurations are TRIPLE "
          "variants — the paper's conclusion, reached by procedure rather "
          "than inspection.")


if __name__ == "__main__":
    main()
