#!/usr/bin/env python3
"""Declarative campaigns: one JSON-able spec object drives everything.

Covers the campaign surface in ~70 lines:
  * build a CampaignSpec (grid + ExecutionPolicy) from a preset,
  * freeze it to JSON and load it back (what `campaign --spec FILE` does),
  * run it through the Campaign façade and stream raw runs to disk,
  * interrupt-and-resume the same spec without re-running finished cells,
  * render the offline report (zero re-simulation).

Run:  python examples/campaign_spec.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.sim import Campaign, CampaignSpec, ExecutionPolicy
from repro.experiments import scenarios


def main() -> None:
    # A preset is a named CampaignSpec; 'smoke' is the sub-second grid.
    # Attach a policy: framed sink (records land as cells finish).
    spec = scenarios.get_campaign_preset("smoke").spec(
        policy=ExecutionPolicy(sink="framed"),
    )

    with tempfile.TemporaryDirectory() as tmp:
        # The spec is one JSON value.  Freeze it, load it back: equal.
        spec_file = Path(tmp) / "smoke.json"
        spec.save(spec_file)
        loaded = CampaignSpec.load(spec_file)
        assert loaded == spec
        print(f"spec round-trips through {spec_file.name}: "
              f"{len(spec.to_json())} bytes of JSON")
        grid = spec.grid
        print(f"grid: {len(grid.protocols)} protocols x "
              f"{len(grid.m_values)} MTBFs x {len(grid.phi_values)} phi, "
              f"{grid.replicas} replicas; policy: sink={spec.policy.sink}")

        # One façade object runs it.  The results path is *not* part of
        # the spec — a spec describes the campaign, not one execution.
        results = Path(tmp) / "smoke.jsonl"
        execution = Campaign(loaded).run(results)
        print(f"\nfirst run : {execution.report.describe()}")

        # Simulate an interruption: chop the file mid-record, then let
        # the same spec finish the sweep.  The sidecar manifest stores
        # the spec fingerprint, so a drifted spec would be refused here.
        full = results.read_bytes()
        results.write_bytes(full[: len(full) * 2 // 3])
        execution = Campaign(loaded).resume(results)
        print(f"resume    : {execution.report.describe()}")
        assert results.read_bytes() == full  # byte-identical completion

        # Offline analysis streams the file — no re-simulation.
        report = Campaign(loaded).report(results)
        print("\n" + report)


if __name__ == "__main__":
    main()
