#!/usr/bin/env python3
"""Exascale capacity study (the paper's §VI-B question, taken further).

Given the IESP exascale projection (Exa scenario), this study answers the
questions a machine operator would ask:

 1. How reliable must nodes be for checkpointing waste to stay acceptable?
    (MTBF frontier per protocol.)
 2. How does buddy checkpointing compare with classical centralised
    checkpointing on the same machine?
 3. Which protocol should a 3-week campaign use, balancing waste against
    the probability of losing the campaign to a fatal failure?

Run:  python examples/exascale_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, success_probability
from repro.analysis.crossover import find_mtbf_frontier, find_phi_crossover
from repro.core.comparators import centralized_waste_at_optimum, daly_period
from repro.core.waste import waste_at_optimum
from repro.units import DAY, HOUR, YEAR, format_time

PROTOS = (DOUBLE_NBL, DOUBLE_BOF, TRIPLE)


def mtbf_frontiers() -> None:
    print("== 1. Node-reliability requirements "
          "(platform MTBF at which waste reaches a target) ==")
    params = repro.scenarios.EXA.parameters(M="1h")  # M overridden below
    phi = 6.0  # phi/R = 0.1, the paper's favourable-overlap point
    print(f"   phi/R = {phi / params.R:.2f}")
    for target in (0.5, 0.2, 0.1, 0.05):
        row = []
        for spec in PROTOS:
            m = find_mtbf_frontier(spec, params, phi, waste_target=target)
            node_mtbf = m * params.n
            row.append(f"{spec.key}: M>={format_time(round(m))} "
                       f"(node MTBF {node_mtbf / YEAR:.0f}y)")
        print(f"   waste <= {target:4.0%}:  " + ";  ".join(row))
    print()


def versus_centralized() -> None:
    print("== 2. Buddy vs centralised checkpointing on the Exa machine ==")
    # Dumping the full 64 PB to shared storage even at an aggressive
    # aggregate 10 TB/s takes ~107 min; per-node buddy exchange takes 60 s.
    total_bytes = 64e15  # 64 GB/core x 1000 cores x 1e6 nodes
    C = total_bytes / 10e12
    print(f"   global dump cost C = {format_time(round(C))} "
          f"vs per-node delta = 30s / R = 60s")
    for m_label in ("1h", "4h", "1d"):
        params = repro.scenarios.EXA.parameters(M=m_label)
        w_central = centralized_waste_at_optimum(C, params.M, D=60.0, R=C)
        w_buddy = float(np.asarray(waste_at_optimum(TRIPLE, params, 6.0).total))
        p_daly = daly_period(C, params.M, 60.0, C)
        print(f"   M={m_label:>3s}: centralised waste = {w_central:.3f} "
              f"(Daly period {format_time(round(p_daly))}), "
              f"TRIPLE waste = {w_buddy:.3f}")
    print("   -> at exascale failure rates the centralised protocol "
          "saturates; buddy checkpointing stays productive.\n")


def campaign_choice() -> None:
    print("== 3. Protocol choice for a 3-week campaign ==")
    T = 3 * 7 * DAY
    for m_label, phi_over_r in (("30min", 0.1), ("2h", 0.1), ("2h", 1.0)):
        params = repro.scenarios.EXA.parameters(M=m_label)
        phi = phi_over_r * params.R
        print(f"   M={m_label}, phi/R={phi_over_r}:")
        for spec in PROTOS:
            w = float(np.asarray(waste_at_optimum(spec, params, phi).total))
            p = success_probability(spec, params, phi, T)
            useful = (1 - w) * 100
            print(f"     {spec.key:12s} useful throughput {useful:5.1f}%  "
                  f"P(survive 3 weeks) = {p:.4f}")
    params = repro.scenarios.EXA.parameters(M="2h")
    cross = find_phi_crossover(TRIPLE, DOUBLE_NBL, params)
    if cross is not None:
        print(f"   TRIPLE loses its waste edge above phi/R = "
              f"{cross / params.R:.2f} (M=2h)")
    print("   -> TRIPLE dominates on both axes unless overlap is "
          "impossible (phi/R -> 1).")


def main() -> None:
    print("Exascale study on the paper's Exa scenario "
          f"({repro.scenarios.EXA.description})\n")
    mtbf_frontiers()
    versus_centralized()
    campaign_choice()


if __name__ == "__main__":
    main()
