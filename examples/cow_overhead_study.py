#!/usr/bin/env python3
"""From fork()/copy-on-write physics to the overhead parameter φ.

§IV argues TRIPLE can run at "almost no failure-free overhead" because
checkpoints are created with fork(): the child shares pages copy-on-write
and uploads them while the parent keeps computing; only pages dirtied
before upload are physically copied.  §VI-A cautions that φ therefore
never quite reaches 0.

This study instantiates that argument: a 512 MB checkpoint image, a range
of application dirty rates, both upload orderings (§IV suggests sending
most-likely-dirtied pages first), and the resulting effective φ/R — which
then feeds straight back into the waste model to show where on Figure 5's
x-axis a real application actually sits.

Run:  python examples/cow_overhead_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import DOUBLE_NBL, TRIPLE
from repro.core.cow import CowModel
from repro.core.waste import waste_at_optimum

MB = 10**6
PAGE = 4096
IMAGE = 512 * MB
PAGES = IMAGE // PAGE


def effective_phi_table() -> list[tuple[str, float, float]]:
    params = repro.scenarios.BASE.parameters(M="7h")
    theta = params.theta_max  # fully stretched window, 44 s
    print(f"image: {IMAGE // MB} MB ({PAGES} pages), upload window theta = "
          f"{theta:g}s, R = {params.R:g}s\n")
    print(f"{'dirty rate':>12s} {'ordering':>10s} {'dup pages':>10s} "
          f"{'phi/R':>8s}")
    rows = []
    # 500 pages/s ≈ 2 MB/s of dirtied memory (read-mostly solver);
    # 32k pages/s ≈ 130 MB/s (write-heavy) — beyond ~60k pages/s every
    # page gets touched within the window and duplication saturates at
    # one copy per page regardless of ordering.
    for pages_per_s in (500, 2_000, 8_000, 32_000):
        for ordering in ("uniform", "hot-first"):
            model = CowModel(pages=PAGES, page_bytes=PAGE,
                             dirty_rate=pages_per_s, copy_time=2e-6,
                             interference=0.002, ordering=ordering)
            outcome = model.evaluate(theta)
            ratio = model.phi_over_r(theta, params.R)
            print(f"{pages_per_s:>10d}/s {ordering:>10s} "
                  f"{outcome.duplicated_pages:10.0f} {ratio:8.4f}")
            rows.append((ordering, pages_per_s, ratio))
    return rows


def waste_at_realistic_phi(rows) -> None:
    params = repro.scenarios.BASE.parameters(M="7h")
    print("\nwaste at the derived operating points (Base, M=7h):")
    print(f"{'dirty rate':>12s} {'ordering':>10s} {'phi/R':>7s} "
          f"{'TRIPLE':>9s} {'NBL':>9s} {'ratio':>7s}")
    for ordering, rate, ratio in rows:
        phi = ratio * params.R
        w_tri = float(np.asarray(waste_at_optimum(TRIPLE, params, phi).total))
        w_nbl = float(np.asarray(
            waste_at_optimum(DOUBLE_NBL, params, phi).total))
        print(f"{rate:>10d}/s {ordering:>10s} {ratio:7.3f} "
              f"{w_tri:9.5f} {w_nbl:9.5f} {w_tri / w_nbl:7.3f}")
    print("\n=> even a write-heavy application lands at phi/R << 0.5, the "
          "regime where TRIPLE's waste is a fraction of DOUBLE-NBL's "
          "(Fig. 5); at moderate dirty rates the hot-first upload ordering "
          "of §IV roughly halves the duplicated pages, and duplication "
          "saturates at one copy per page for streaming writers.")


def main() -> None:
    rows = effective_phi_table()
    waste_at_realistic_phi(rows)


if __name__ == "__main__":
    main()
