#!/usr/bin/env python3
"""The results store: warm campaign re-runs cost zero simulations.

Covers the content-addressed store surface (repro.store) in ~60 lines:
  * run a campaign cold with a store attached (simulate + publish),
  * re-run the identical spec warm (0 simulations, byte-identical file),
  * run a half-overlapping grid (only the missing cells simulate),
  * inspect the store (stat/verify) and export a spec's results file,
  * compact the loose entries into a segment (exports stay identical),
  * trim it to a byte budget with LRU gc.

Run:  python examples/campaign_store.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.experiments import scenarios
from repro.sim import Campaign
from repro.store import CampaignStore


def main() -> None:
    spec = scenarios.get_campaign_preset("smoke").spec()

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        store = tmp / "store"

        # Cold: every cell simulates, every replica is published.
        cold = Campaign(spec).run(tmp / "cold.jsonl", store=store)
        print(f"cold   : {cold.report.describe()}")

        # Warm: the identical spec re-runs with zero simulations and a
        # byte-identical results file — the store's hard invariant.
        warm = Campaign(spec).run(tmp / "warm.jsonl", store=store)
        print(f"warm   : {warm.report.describe()}")
        assert warm.report.replicas_run == 0
        assert (tmp / "warm.jsonl").read_bytes() \
            == (tmp / "cold.jsonl").read_bytes()

        # Overlap: a different campaign whose grid shares one M value —
        # the shared cells are served, only the novel ones simulate.
        overlap_spec = replace(spec, grid=replace(
            spec.grid, m_values=(spec.grid.m_values[0], 2400.0)))
        overlap = Campaign(overlap_spec).run(tmp / "overlap.jsonl",
                                             store=store)
        print(f"overlap: {overlap.report.describe()}")
        assert overlap.report.cells_cached == 2

        # The store is queryable, verifiable, exportable and bounded.
        warehouse = CampaignStore(store)
        print(f"store  : {warehouse.stat().describe()}")
        assert warehouse.verify().ok
        export = warehouse.export(spec, tmp / "export.jsonl")
        print(f"export : {export.describe()}")

        # Compaction packs the loose files into one segment file +
        # index — flat lookup latency at fleet scale — and is invisible
        # to every consumer: the export is byte-identical.
        compacted = warehouse.compact()
        print(f"compact: {compacted.describe()}")
        warehouse.export(spec, tmp / "export2.jsonl")
        assert (tmp / "export2.jsonl").read_bytes() \
            == (tmp / "export.jsonl").read_bytes()
        assert warehouse.verify().ok

        report = warehouse.gc(max_bytes=4096)
        print(f"gc 4096: {report.describe()}")


if __name__ == "__main__":
    main()
