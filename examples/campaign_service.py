#!/usr/bin/env python3
"""The campaign service: submit, stream, and query over HTTP.

Covers the daemon surface in ~80 lines, all through real HTTP against
an in-process `CampaignService` (what `repro-checkpoint serve` runs):
  * start the daemon on an ephemeral port over a fresh store,
  * POST a CampaignSpec and follow its NDJSON event stream live,
  * decode the stream with the same wire format the tests property-check,
  * re-query the now-warm store: a full report with zero simulations,
  * shut down gracefully (in-flight campaigns drain, never tear).

Run:  python examples/campaign_service.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.parse
import urllib.request
from pathlib import Path

from repro.experiments import scenarios
from repro.service import CampaignService
from repro.sim.events import event_from_dict


def fetch(url: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode()
    with urllib.request.urlopen(
        urllib.request.Request(url, data=data), timeout=60
    ) as resp:
        return json.loads(resp.read())


def main() -> None:
    spec = scenarios.get_campaign_preset("smoke").spec()

    with tempfile.TemporaryDirectory() as tmp:
        service = CampaignService(
            store=Path(tmp) / "store", data_dir=Path(tmp) / "service",
        )
        with service:
            print(f"daemon listening on {service.url()}")

            # Submit: the body is spec.to_dict(), the same JSON value
            # `campaign --spec FILE` reads.  Identical specs map to one
            # campaign id, so re-submitting is free.
            submitted = fetch(service.url("/campaigns"), spec.to_dict())
            cid = submitted["id"]
            print(f"submitted campaign {cid} ({submitted['state']})")

            # Follow the live event stream: NDJSON, one wire dict per
            # line, decodable with the library's own event codec.  The
            # stream replays from the start and ends when the campaign
            # is terminal.
            kinds: dict[str, int] = {}
            with urllib.request.urlopen(
                service.url(f"/campaigns/{cid}/events"), timeout=120
            ) as stream:
                for line in stream:
                    event = event_from_dict(json.loads(line))
                    name = type(event).__name__
                    kinds[name] = kinds.get(name, 0) + 1
            print("event stream:", ", ".join(
                f"{n}x{c}" for n, c in kinds.items()))

            status = fetch(service.url(f"/campaigns/{cid}"))
            assert status["state"] == "finished"
            print(f"progress: {status['progress']}")

            # The store is now warm for this spec: the report renders
            # from cached cells, with zero simulations — the query path
            # a fleet of clients would hammer.
            query = urllib.parse.urlencode(
                {"spec": json.dumps(spec.to_dict())})
            report = fetch(service.url("/reports?" + query))
            assert report["simulated_cells"] == 0
            cov = report["coverage"]
            print(f"warm report ({cov['present']}/{cov['total']} replica "
                  f"entries in store, 0 simulated):\n")
            print(report["report"])

            health = fetch(service.url("/healthz"))
            print(f"store reads: {health['store']['reads']}")
        print("daemon stopped (drained cleanly)")


if __name__ == "__main__":
    main()
