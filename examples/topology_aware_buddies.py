#!/usr/bin/env python3
"""Topology-aware buddy placement: trading transfer cost for failure domains.

The paper leaves buddy *placement* open.  On a real machine it matters
twice:

  * buddies in the same rack exchange checkpoints over cheap intra-rack
    links (smaller R), but share a failure domain — a rack-level outage
    (power/cooling/switch) takes out both images of a pair at once, which
    is fatal by construction;
  * buddies in different racks pay inter-rack bandwidth but survive any
    single rack outage.

This example builds a ring-of-racks machine, derives the R each placement
implies, folds rack-outage risk into the pair-survival model, and runs the
event simulator on both placements to confirm the fault-free side.

Run:  python examples/topology_aware_buddies.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import DOUBLE_NBL, Parameters
from repro.core.waste import waste_at_optimum
from repro.sim.des import DesConfig, run_des_batch, summarize_waste
from repro.sim.network import Link, blocking_transfer_time
from repro.sim.topology import ring_of_racks, topology_aware_groups
from repro.units import DAY, YEAR

MB = 10**6
N_RACKS, PER_RACK = 8, 8
CKPT = 512 * MB


def build_placements():
    machine = ring_of_racks(N_RACKS, PER_RACK)
    same_rack = topology_aware_groups(machine, 2)
    cross_rack = topology_aware_groups(machine, 2, anti_affinity="rack")
    return machine, same_rack, cross_rack


def rack_spread(machine, assignment) -> float:
    """Fraction of pairs whose members share a rack."""
    same = sum(
        1 for grp in assignment.groups
        if len({machine.nodes[v]["rack"] for v in grp}) == 1
    )
    return same / assignment.n_groups


def pair_survival_with_rack_outages(
    params: Parameters, intra_rack_fraction: float, rack_mtbf: float, T: float
) -> float:
    """Survival probability including rack-level outages.

    Node-level fatal pairs follow Eq. (11) — note this already encodes the
    R trade-off: cross-rack pairs have a slower resend, hence a longer
    risk window.  On top of that, a rack outage (each rack independently,
    MTBF ``rack_mtbf``) is instantly fatal for every pair it fully
    contains (both image holders vanish at once); pairs that span racks
    see it as an ordinary recoverable failure.
    """
    p_nodes = repro.success_probability(DOUBLE_NBL, params, 0.0, T)
    outages = N_RACKS * T / rack_mtbf          # expected outages, machine-wide
    intra_pairs_per_rack = PER_RACK / 2 * intra_rack_fraction
    expected_fatal = outages * intra_pairs_per_rack
    return float(p_nodes * np.exp(-expected_fatal))


def main() -> None:
    machine, same_rack, cross_rack = build_placements()
    intra = Link(bandwidth=512 * MB)   # intra-rack backplane
    inter = Link(bandwidth=128 * MB)   # inter-rack uplink share

    r_same = blocking_transfer_time(CKPT, intra)
    r_cross = blocking_transfer_time(CKPT, inter)
    print(f"machine: {N_RACKS} racks x {PER_RACK} nodes")
    print(f"same-rack placement:  {rack_spread(machine, same_rack):4.0%} "
          f"intra-rack pairs, R = {r_same:.1f}s")
    print(f"cross-rack placement: {rack_spread(machine, cross_rack):4.0%} "
          f"intra-rack pairs, R = {r_cross:.1f}s\n")

    m_platform = 3600.0  # node MTBF ≈ 2.7 days on this 64-node machine
    base = dict(D=0.0, delta=2.0, alpha=10.0, M=m_platform,
                n=N_RACKS * PER_RACK)
    params_same = Parameters(R=r_same, **base)
    params_cross = Parameters(R=r_cross, **base)

    # Fault-free side: cheaper R wins on waste (model + event simulation).
    print("== waste (model vs event simulation, phi/R = 0.25) ==")
    for label, params, grouping in (
        ("same-rack ", params_same, same_rack),
        ("cross-rack", params_cross, cross_rack),
    ):
        phi = 0.25 * params.R
        w_model = float(np.asarray(
            waste_at_optimum(DOUBLE_NBL, params, phi).total))
        results = run_des_batch(
            DesConfig(protocol=DOUBLE_NBL, params=params, phi=phi,
                      work_target=6 * 3600.0, grouping=grouping, seed=99),
            replicas=6,
        )
        ok = [r for r in results if r.succeeded]
        des = summarize_waste(ok).mean if ok else float("nan")
        print(f"   {label}: model {w_model:.4f}, DES {des:.4f}")

    # Risk side: fold in rack outages (each rack fails every ~5 years).
    rack_mtbf = 5 * YEAR
    T = 30 * DAY
    print(f"\n== survival over 30 days with rack outages "
          f"(rack MTBF {rack_mtbf / YEAR:.0f}y) ==")
    for label, params, assignment in (
        ("same-rack ", params_same, same_rack),
        ("cross-rack", params_cross, cross_rack),
    ):
        p = pair_survival_with_rack_outages(
            params, rack_spread(machine, assignment), rack_mtbf, T)
        print(f"   {label}: P(survive) = {p:.4f}")

    print("\n=> same-rack buddies checkpoint ~4x faster but a single rack "
          "outage is unrecoverable for every pair it contains; cross-rack "
          "placement pays a small waste premium for that immunity.")


if __name__ == "__main__":
    main()
