#!/usr/bin/env python3
"""Validate the analytical model against the simulators, end to end.

This is experiment E7 of DESIGN.md as a narrative script: for each
protocol it compares

  * the paper's expected lost time per failure  F = A + P/2   (Eqs. 7/8/14)
    against the renewal Monte Carlo's measured mean recovery block,
  * the waste model (Eq. 4) against renewal and event-simulation
    measurements, and
  * the success probability (Eqs. 11/16) against the risk Monte Carlo.

Run:  python examples/simulation_validation.py        (~30 s)
"""

from __future__ import annotations

import numpy as np

import repro
from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE
from repro.core.period import optimal_period
from repro.core.waste import waste
from repro.sim.des import DesConfig, run_des_batch, summarize_waste
from repro.sim.renewal import RenewalConfig, mean_block_samples, run_renewal_batch
from repro.sim.riskmc import RiskMcConfig, run_risk_mc

DAY = 86400.0
PROTOS = (DOUBLE_NBL, DOUBLE_BOF, TRIPLE)


def validate_lost_time_and_waste() -> None:
    params = repro.scenarios.BASE.parameters(M=600.0)
    phi = 1.0
    print("== F and waste: model vs renewal Monte Carlo "
          f"(Base, M=10min, phi={phi}) ==")
    for spec in PROTOS:
        period = float(optimal_period(spec, params, phi))
        results, summary = run_renewal_batch(
            RenewalConfig(protocol=spec, params=params, phi=phi,
                          period=period, n_periods=50_000, seed=42),
            replicas=8,
        )
        f_model = float(np.asarray(spec.expected_lost_time(params, phi, period)))
        f_samples = mean_block_samples(results)  # skips no-failure replicas
        f_hat = float(np.mean(f_samples)) if f_samples else float("nan")
        w_model = float(waste(spec, params, phi, period))
        print(f"   {spec.key:12s} F: model {f_model:7.2f}s vs MC {f_hat:7.2f}s"
              f"   waste: model {w_model:.4f} vs MC {summary.mean:.4f} "
              f"+/- {(summary.ci_high - summary.ci_low) / 2:.4f}")
    print()


def validate_with_event_simulation() -> None:
    params = repro.scenarios.BASE.parameters(M=900.0, n=48)
    phi = 1.0
    print("== waste: model vs full event simulation "
          "(48 nodes, 8h of work, 10 replicas) ==")
    for spec in PROTOS:
        cfg = DesConfig(protocol=spec, params=params, phi=phi,
                        work_target=8 * 3600.0, seed=4242)
        results = run_des_batch(cfg, replicas=10)
        ok = [r for r in results if r.succeeded]
        summary = summarize_waste(ok)
        w_model = float(np.asarray(
            repro.waste_at_optimum(spec, params, phi).total))
        print(f"   {spec.key:12s} model {w_model:.4f} vs DES {summary.mean:.4f} "
              f"[{summary.ci_low:.4f}, {summary.ci_high:.4f}] "
              f"({len(ok)}/{len(results)} runs survived, "
              f"{sum(r.failures for r in ok)} failures injected)")
    print()


def validate_risk() -> None:
    params = repro.scenarios.BASE.parameters(M=60.0)
    T = 10 * DAY
    print("== success probability: Eqs. 11/16 vs risk Monte Carlo "
          "(Base, M=60s, T=10 days, theta=(alpha+1)R) ==")
    for spec in PROTOS:
        mc = run_risk_mc(RiskMcConfig(protocol=spec, params=params, T=T,
                                      phi=0.0, replicas=400_000, seed=7))
        model = repro.success_probability(spec, params, 0.0, T)
        lo, hi = mc.success_ci
        print(f"   {spec.key:12s} model {model:.4f} vs MC "
              f"{mc.success_probability:.4f} [{lo:.4f}, {hi:.4f}]")
    print("\n=> all three layers agree; the first-order model is accurate "
          "wherever lambda*Risk << 1 (everywhere in the paper's regimes).")


def main() -> None:
    validate_lost_time_and_waste()
    validate_with_event_simulation()
    validate_risk()


if __name__ == "__main__":
    main()
