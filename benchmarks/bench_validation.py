"""E7 — model-vs-simulation validation sweep (renewal + risk MC)."""

from __future__ import annotations

import numpy as np

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.experiments.validation import validate_protocol


def _run_all():
    params = scenarios.BASE.parameters(M=600.0)
    risk_params = scenarios.BASE.parameters(M=60.0)
    checks = []
    for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE):
        checks += validate_protocol(
            spec, params, phi=1.0,
            renewal_replicas=6, renewal_periods=30_000, seed=505,
        )
        checks += [
            c for c in validate_protocol(
                spec, risk_params, phi=0.0,
                renewal_replicas=2, renewal_periods=4_000,
                risk_T=5 * 86400.0, risk_replicas=150_000, seed=506,
            )
            if "success" in c.name
        ]
    return checks


def test_validation_suite(benchmark, record):
    checks = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    assert all(c.passed for c in checks), [c for c in checks if not c.passed]
    lines = [
        f"{c.protocol:12s} {c.name:32s} model={c.model_value:10.4g} "
        f"est={c.estimate:10.4g} ci=({c.ci_low:.4g}, {c.ci_high:.4g}) "
        f"{'PASS' if c.passed else 'FAIL'}"
        for c in checks
    ]
    record("Model-vs-simulation validation (Eqs. 7/8/14 via renewal MC, "
           "Eqs. 11/16 via risk MC)", lines)
