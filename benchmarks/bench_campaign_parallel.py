"""Serial vs parallel campaign execution.

Not a paper artefact — this measures the campaign executor's sharded
multi-process path against the serial baseline on an identical grid and
verifies the engine's core guarantee along the way: the parallel output is
bit-identical to serial (same JSONL bytes, same cell summaries).

The speedup scales with available cores; on a single-core host the
parallel path mainly pays pool overhead, so the benchmark reports the
ratio rather than asserting it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.sim.campaign import CampaignConfig
from repro.sim.results import ci_half_width
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy


def _spec(workers: int = 1) -> CampaignSpec:
    return CampaignSpec(
        grid=CampaignConfig(
            protocols=(DOUBLE_NBL, DOUBLE_BOF, TRIPLE),
            base_params=scenarios.BASE.parameters(M=600.0, n=24),
            m_values=(300.0, 600.0, 1200.0),
            phi_values=(0.5, 1.0, 2.0),
            work_target=1800.0,
            replicas=4,
            seed=4242,
            share_traces=True,
        ),
        policy=ExecutionPolicy(workers=workers),
    )


def _canonical(cells):
    return [
        (c.protocol, c.M, c.phi, repro_io.dump_result(c.summary))
        for c in cells
    ]


def test_parallel_matches_serial_and_reports_speedup(tmp_path, record):
    t0 = time.perf_counter()
    serial = Campaign(_spec()).run(tmp_path / "serial.jsonl")
    t_serial = time.perf_counter() - t0

    workers = max(2, os.cpu_count() or 2)
    t0 = time.perf_counter()
    parallel = Campaign(_spec(workers)).run(tmp_path / "parallel.jsonl")
    t_parallel = time.perf_counter() - t0

    assert _canonical(serial.cells) == _canonical(parallel.cells)
    assert (tmp_path / "serial.jsonl").read_bytes() == \
        (tmp_path / "parallel.jsonl").read_bytes()
    assert serial.report.cells_run == parallel.report.cells_run == 27

    record("Campaign executor: serial vs parallel", [
        f"grid: 3 protocols x 3 M x 3 phi x 4 replicas = 108 DES runs",
        f"serial (workers=1):    {t_serial:.2f}s",
        f"parallel (workers={workers}): {t_parallel:.2f}s "
        f"on {os.cpu_count()} core(s)",
        f"speedup: {t_serial / t_parallel:.2f}x "
        "(bit-identical cells and results file)",
    ])


def test_vectorized_backend_speedup_with_equivalence(tmp_path, record):
    """The vectorized engine's acceptance gate: ≥10x per-cell throughput
    on a high-churn cell, with the statistical-equivalence contract
    asserted on the very runs being timed (speed that changed the
    answer would not count)."""

    def spec(backend: str) -> CampaignSpec:
        return CampaignSpec(
            grid=CampaignConfig(
                protocols=(DOUBLE_NBL,),
                base_params=scenarios.BASE.parameters(M=600.0, n=24),
                m_values=(300.0,),
                phi_values=(1.0,),
                work_target=7200.0,  # ~2h of work at M=300: high churn
                replicas=30,
                seed=4242,
            ),
            policy=ExecutionPolicy(backend=backend),
        )

    t0 = time.perf_counter()
    des = Campaign(spec("des")).run(tmp_path / "des.jsonl")
    t_des = time.perf_counter() - t0

    t0 = time.perf_counter()
    vec = Campaign(spec("vectorized")).run(tmp_path / "vec.jsonl")
    t_vec = time.perf_counter() - t0

    assert des.report.cells_run == vec.report.cells_run == 1
    speedup = t_des / t_vec
    assert speedup >= 10.0, (
        f"vectorized backend must be >=10x the DES on this cell, "
        f"got {speedup:.1f}x ({t_des:.3f}s vs {t_vec:.3f}s)"
    )

    # Equivalence on the timed runs: completed-replica waste within the
    # summed 95% CIs plus the documented O((F/M)^2) thinning allowance.
    w_des = np.array([r.waste for r in des.cells[0].results])
    w_vec = np.array([r.waste for r in vec.cells[0].results])
    mean_des, mean_vec = float(np.nanmean(w_des)), float(np.nanmean(w_vec))
    tolerance = (ci_half_width(w_des) + ci_half_width(w_vec)
                 + 2.0 * mean_des ** 2)
    assert abs(mean_des - mean_vec) <= tolerance

    record("Vectorized vs per-event DES backend (one high-churn cell)", [
        "cell: double-nbl, M=300s, n=24, phi=1.0, 2h work, 30 replicas",
        f"des (per-event):   {t_des:.3f}s",
        f"vectorized:        {t_vec:.3f}s",
        f"speedup: {speedup:.1f}x  "
        f"(waste {mean_vec:.4f} vs {mean_des:.4f}, "
        f"|diff| {abs(mean_des - mean_vec):.4f} <= tol {tolerance:.4f})",
    ])


def test_resume_skips_finished_work(tmp_path, record):
    spec = _spec()
    path = tmp_path / "resume.jsonl"
    full_run = Campaign(spec).run(path)
    full_bytes = path.read_bytes()

    # Interrupt after ~two thirds of the grid.
    lines = full_bytes.splitlines(keepends=True)
    path.write_bytes(b"".join(lines[: len(lines) * 2 // 3]))

    t0 = time.perf_counter()
    resumed = Campaign(spec).resume(path)
    t_resume = time.perf_counter() - t0

    assert path.read_bytes() == full_bytes
    assert _canonical(resumed.cells) == _canonical(full_run.cells)
    assert resumed.report.cells_skipped >= config_cells_third(spec.grid)

    record("Campaign executor: resume after interruption", [
        f"{resumed.report.cells_skipped}/{resumed.report.cells_total} cells "
        f"recovered from the truncated file, "
        f"{resumed.report.cells_run} re-run in {t_resume:.2f}s",
    ])


def config_cells_third(config: CampaignConfig) -> int:
    total = (len(config.protocols) * len(config.m_values)
             * len(config.phi_values))
    return total // 3


def test_event_pipeline_overhead_gate(tmp_path, record):
    """The CI gate on the refactor's cost: routing every cell through
    the typed event bus (controller replay, sink writer, progress
    tracker fan-out) must add <= 5% wall-clock to the serial DES path,
    measured against a stripped direct loop — run_cell + sink.emit and
    nothing else, the pre-refactor executor's inner loop floor.
    Best-of-3 each, interleaved, so machine noise hits both sides."""
    from repro.sim.backends import run_cell
    from repro.sim.executor import execute_spec, plan_cells
    from repro.sim.sinks import make_sink

    spec = _spec()

    def direct(path):
        config = spec.config(path)
        controller = spec.controller()
        sink = make_sink(spec.policy.sink, path)
        sink.begin()
        trace_cache: dict = {}
        for plan in plan_cells(config):
            sink.emit(plan, run_cell(config, plan, controller,
                                     trace_cache))

    def piped(path):
        execute_spec(spec, results_path=path)

    t_direct, t_piped = [], []
    for i in range(3):
        t0 = time.perf_counter()
        direct(tmp_path / f"direct-{i}.jsonl")
        t_direct.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        piped(tmp_path / f"piped-{i}.jsonl")
        t_piped.append(time.perf_counter() - t0)

    # Same bytes first: a fast pipeline that changed the output would
    # not count.
    assert (tmp_path / "piped-0.jsonl").read_bytes() \
        == (tmp_path / "direct-0.jsonl").read_bytes()

    best_direct, best_piped = min(t_direct), min(t_piped)
    overhead = best_piped / best_direct - 1.0
    assert best_piped <= 1.05 * best_direct + 0.02, (
        f"event pipeline adds {overhead:+.1%} to the serial DES path "
        f"({best_piped:.3f}s vs {best_direct:.3f}s direct loop); "
        "the gate is +5%"
    )

    record("Event-pipeline overhead gate (serial DES path)", [
        "grid: 3 protocols x 3 M x 3 phi x 4 replicas = 108 DES runs",
        f"direct loop (run_cell + sink.emit): {best_direct:.3f}s",
        f"event pipeline (execute_spec):      {best_piped:.3f}s",
        f"overhead: {overhead:+.1%} (gate: +5.0%)",
    ])


def test_observability_overhead_gate(tmp_path, record):
    """The gate that keeps telemetry on by default: a campaign with the
    metrics consumer subscribed (the shipping configuration) must add
    <= 3% wall-clock over the identical campaign with observability
    disabled (``repro.obs.set_enabled(False)``, what ``REPRO_OBS=off``
    selects at import).  Best-of-3 each, interleaved, same bytes."""
    from repro.obs import set_enabled
    from repro.sim.executor import execute_spec

    spec = _spec()

    def run(path, instrumented: bool):
        set_enabled(instrumented)
        try:
            return execute_spec(spec, results_path=path)
        finally:
            set_enabled(True)

    t_off, t_on = [], []
    for i in range(3):
        t0 = time.perf_counter()
        run(tmp_path / f"off-{i}.jsonl", instrumented=False)
        t_off.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        execution = run(tmp_path / f"on-{i}.jsonl", instrumented=True)
        t_on.append(time.perf_counter() - t0)

    # Telemetry must be a pure observer: identical output bytes, and
    # the instrumented run actually carried its metrics snapshot.
    assert (tmp_path / "on-0.jsonl").read_bytes() \
        == (tmp_path / "off-0.jsonl").read_bytes()
    assert execution.report.metrics is not None

    best_off, best_on = min(t_off), min(t_on)
    overhead = best_on / best_off - 1.0
    assert best_on <= 1.03 * best_off + 0.02, (
        f"observability adds {overhead:+.1%} to the serial DES path "
        f"({best_on:.3f}s vs {best_off:.3f}s with REPRO_OBS=off); "
        "the gate is +3% — instrumentation must stay cheap enough "
        "to stay on by default"
    )

    record("Observability overhead gate (metrics consumer on vs off)", [
        "grid: 3 protocols x 3 M x 3 phi x 4 replicas = 108 DES runs",
        f"REPRO_OBS=off:          {best_off:.3f}s",
        f"instrumented (default): {best_on:.3f}s",
        f"overhead: {overhead:+.1%} (gate: +3.0%)",
    ])
