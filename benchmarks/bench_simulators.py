"""Throughput benchmarks of the three simulator tiers.

Not a paper artefact — these keep the simulators honest as code evolves
(the HPC-guide discipline: measure before optimising) and document what a
laptop-scale reproduction costs.
"""

from __future__ import annotations

import numpy as np

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.sim.des import DesConfig, run_des
from repro.sim.renewal import RenewalConfig, run_renewal
from repro.sim.riskmc import RiskMcConfig, run_risk_mc


def test_des_throughput(benchmark, record):
    params = scenarios.BASE.parameters(M=600.0, n=128)
    cfg = DesConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                    work_target=4 * 3600.0, seed=9)
    result = benchmark(run_des, cfg)
    assert result.status in ("completed", "fatal")
    record("DES throughput", [
        f"n=128 nodes, 4h of work, M=600s: status={result.status}, "
        f"failures={result.failures}, commits={result.commits}",
    ])


def test_renewal_throughput(benchmark, record):
    params = scenarios.BASE.parameters(M=600.0)
    cfg = RenewalConfig(protocol=TRIPLE, params=params, phi=1.0,
                        n_periods=100_000, seed=9)
    result = benchmark(run_renewal, cfg)
    assert np.isfinite(result.waste)
    record("Renewal MC throughput", [
        f"100k periods, {result.n_failures} failures sampled, "
        f"waste={result.waste:.4f}",
    ])


def test_riskmc_throughput(benchmark, record):
    params = scenarios.EXA.parameters(M=120.0)
    cfg = RiskMcConfig(protocol=TRIPLE, params=params, T=30 * 86400.0,
                       phi=0.0, replicas=100_000, seed=9)
    result = benchmark(run_risk_mc, cfg)
    assert 0.0 <= result.success_probability <= 1.0
    record("Risk MC throughput (1e6-node Exa platform via group sampling)", [
        f"100k group replicas: P(success)={result.success_probability:.5f}",
    ])


def test_model_grid_throughput(benchmark, record):
    """The full Figure 4 grid (3 protocols x 49 x 41) in one call."""
    from repro.experiments import fig4

    data = benchmark(fig4.generate, num_phi=41, num_m=49)
    cells = sum(p.waste.size for p in data.panels)
    record("Vectorised model grid", [f"{cells} (M, phi) cells evaluated"])
