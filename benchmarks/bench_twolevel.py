"""E15 — extension: two-level stacks (buddy + global safety net, §VIII).

The paper's closing direction: combine in-memory buddy checkpointing with
hierarchical stable-storage checkpoints.  This bench evaluates the
combined model across protocols and overheads on a harsh Base platform
(M = 60 s) — where fatal buddy failures are frequent enough that the
safety net's cost separates the stacks.
"""

from __future__ import annotations

import math

import numpy as np

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro.core.twolevel import TwoLevelModel
from repro.units import format_time


def _sweep():
    params = scenarios.BASE.parameters(M=60.0)
    rows = []
    for spec in (DOUBLE_NBL, DOUBLE_BOF, TRIPLE):
        model = TwoLevelModel(spec, params, global_cost=600.0)
        for phi in (2.0, 4.0):  # low-phi corner is level-1 infeasible at M=60
            try:
                rows.append(model.evaluate(phi))
            except Exception:
                continue
    return rows


def test_twolevel_stacks(benchmark, record):
    rows = benchmark(_sweep)
    by_key = {(p.protocol, p.phi): p for p in rows}

    # TRIPLE's safety net is orders of magnitude cheaper at equal phi.
    nbl4 = by_key[("double-nbl", 4.0)]
    tri4 = by_key[("triple", 4.0)]
    assert tri4.fatal_mtbf > 1e3 * nbl4.fatal_mtbf
    assert tri4.global_waste < 1e-2 * nbl4.global_waste
    # But the total at phi=R is won by the double stack (level-1 premium).
    assert nbl4.total_waste < tri4.total_waste
    # BOF's short risk window also buys a cheaper safety net than NBL.
    bof4 = by_key[("double-bof", 4.0)]
    assert bof4.global_waste <= nbl4.global_waste + 1e-12

    lines = [
        "protocol      phi  w_buddy   fatal MTBF      P_g*        w_global  w_total",
        *(f"{p.protocol:12s} {p.phi:4.1f}  {p.buddy_waste:.4f}  "
          f"{format_time(round(min(p.fatal_mtbf, 1e11))):>12s}  "
          f"{format_time(round(min(p.global_period, 1e11))):>9s}  "
          f"{p.global_waste:.2e}  {p.total_waste:.4f}"
          for p in rows),
        "§VIII reading: the safety net is nearly free for TRIPLE "
        "(fatals ~never) and material for the doubles; which *stack* "
        "wins still follows Fig. 5's phi crossover.",
    ]
    record("Two-level stacks: buddy + global checkpoint (Base, M=60s, "
           "C=10min)", lines)
