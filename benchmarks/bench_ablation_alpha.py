"""E8 — ablation: sensitivity of the waste to the overlap factor α.

The paper (§VIII) flags refining α as future work and calls α = 10
conservative.  This ablation quantifies what is at stake: the TRIPLE
advantage at φ/R = 0.1 as α varies, plus waste elasticities.
"""

from __future__ import annotations

import numpy as np

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.analysis.sensitivity import waste_sensitivities
from repro.core.waste import waste_at_optimum

ALPHAS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


def _sweep():
    out = []
    for alpha in ALPHAS:
        params = scenarios.BASE.parameters(M="7h").with_updates(alpha=alpha)
        phi = 0.1 * params.R
        w_tri = float(np.asarray(waste_at_optimum(TRIPLE, params, phi).total))
        w_nbl = float(np.asarray(waste_at_optimum(DOUBLE_NBL, params, phi).total))
        out.append((alpha, w_tri, w_nbl, w_tri / w_nbl))
    return out


def test_alpha_ablation(benchmark, record):
    rows = benchmark(_sweep)
    ratios = [r[3] for r in rows]
    # Larger α stretches θ and the risk window but also raises the lost
    # time constant A = D+R+θ; at fixed φ the TRIPLE advantage erodes.
    assert ratios[0] < 1.0
    assert all(np.isfinite(ratios))

    params = scenarios.BASE.parameters(M="7h")
    sens = waste_sensitivities(TRIPLE, params, 0.4)
    lines = [
        "alpha   waste(TRIPLE)  waste(NBL)   TRIPLE/NBL  (phi/R=0.1, M=7h)",
        *(f"{a:5.0f}   {wt:12.5f}  {wn:10.5f}   {ratio:10.4f}"
          for a, wt, wn, ratio in rows),
        f"elasticity of TRIPLE waste wrt alpha at alpha=10: "
        f"{sens['alpha'].elasticity:+.3f}",
        f"elasticity wrt M: {sens['M'].elasticity:+.3f} (≈ -0.5: sqrt law)",
    ]
    record("Ablation: overlap factor alpha (paper §VIII future work)", lines)
