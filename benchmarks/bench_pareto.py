"""E12 — bi-criteria (waste, risk) Pareto selection.

The paper's "two-criteria assessment" as a decision procedure: on the
Base platform at M = 10 min, the Pareto-efficient operating points are
triple protocols only — the quantitative form of the paper's conclusion.
"""

from __future__ import annotations

from repro import scenarios
from repro.analysis.pareto import candidate_points, cheapest_safe, pareto_front

DAY = 86400.0


def _run():
    params = scenarios.BASE.parameters(M=600.0)
    points = candidate_points(params, T=30 * DAY, num_phi=33)
    front = pareto_front(points)
    pick = cheapest_safe(points, min_success=0.9999)
    return points, front, pick


def test_pareto_front(benchmark, record):
    points, front, pick = benchmark(_run)
    assert front
    assert all(p.protocol.startswith("triple") for p in front), front
    assert pick is not None and pick.protocol.startswith("triple")

    lines = [
        f"{len(points)} candidates -> {len(front)} efficient points, "
        "all TRIPLE variants:",
        *(f"  {p.protocol:12s} phi/R={p.phi / 4.0:5.2f} waste={p.waste:.4f} "
          f"P(fatal)={p.fatal_probability:.2e}" for p in front[:8]),
        f"cheapest with P(success) >= 99.99%: {pick.protocol} at "
        f"phi/R={pick.phi / 4.0:.2f}, waste {pick.waste:.4f}",
    ]
    record("Bi-criteria selection (Base, M=10min, T=30d): the paper's "
           "conclusion, operationalised", lines)
