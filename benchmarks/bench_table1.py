"""E0 — Table I: scenario parameter table."""

from __future__ import annotations

from repro.experiments import table1


def test_table1(benchmark, record):
    data = benchmark(table1.generate)
    rows = {row["Scenario"]: row for row in data.rows}
    assert rows["base"]["R"] == 4.0 and rows["base"]["n"] == 10368
    assert rows["exa"]["delta"] == 30.0 and rows["exa"]["n"] == 10**6
    record("Table I (paper: Base D=0 δ=2 R=4 α=10 n=324x32; "
           "Exa D=60 δ=30 R=60 α=10 n=1e6)",
           data.render().splitlines())
