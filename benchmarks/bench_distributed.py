"""Work-stealing queue scaling across N simulated workers.

Not a paper artefact — this measures the tentpole claim of the
distributed campaign layer (:mod:`repro.sim.distributed`): because
workers *pull* whole chunks from a shared queue instead of receiving a
static shard, adding workers divides the wall-clock near-linearly until
chunk granularity runs out, with zero change to the campaign's output.

Two parts:

* **Correctness, real queue** — the ``high-churn`` preset is executed
  through an actual queue directory and the merged shards are asserted
  byte-identical to the single-machine framed run.
* **Scaling, simulated workers** — every chunk's real execution cost is
  measured once, then the work-stealing schedule is replayed for N
  simulated workers (each claims the next pending chunk the moment it
  goes idle — precisely the queue's greedy behaviour).  The simulated
  makespan is deterministic in the measured costs, so the scaling curve
  is reproducible even on a single-core CI box where N genuinely
  concurrent CPU-bound processes cannot speed anything up.

The claim-order schedule obeys the classic list-scheduling bound
``makespan ≤ total/N + max_chunk``; the assertions check the *measured*
grid actually delivers near-linear speedup at small N, i.e. that the
default chunking is fine-grained enough for a handful of machines.
"""

from __future__ import annotations

import time

from repro.experiments.scenarios import get_campaign_preset
from repro.sim.adaptive import FixedReplicas
from repro.sim.backends import run_cell
from repro.sim.distributed import merge_shards, queue_status
from repro.sim.executor import plan_cells
from repro.sim.spec import Campaign, ExecutionPolicy

PRESET = "high-churn"
REPLICAS = 6
WORKER_COUNTS = (1, 2, 4, 8)


def _config():
    return get_campaign_preset(PRESET).campaign_config(replicas=REPLICAS)


def _spec(policy: ExecutionPolicy):
    return get_campaign_preset(PRESET).spec(replicas=REPLICAS, policy=policy)


def _measure_chunk_costs() -> list[float]:
    """Real per-chunk execution times at chunk_size=1 (18 chunks)."""
    config = _config()
    controller = FixedReplicas(REPLICAS)
    costs = []
    for plan in plan_cells(config):
        cache: dict = {}
        start = time.perf_counter()
        run_cell(config, plan, controller, cache)
        costs.append(time.perf_counter() - start)
    return costs


def _simulate_fleet(costs: list[float], n_workers: int) -> float:
    """Makespan of N workers claiming chunks greedily in ticket order."""
    busy = [0.0] * n_workers
    for cost in costs:
        idlest = busy.index(min(busy))
        busy[idlest] += cost
    return max(busy)


def test_work_stealing_scales_near_linearly(tmp_path, record):
    # Correctness: one real queue worker, merged == single-machine bytes.
    ref_path = tmp_path / "ref.jsonl"
    t0 = time.perf_counter()
    Campaign(_spec(ExecutionPolicy(sink="framed", chunk_size=1))).run(ref_path)
    t_serial = time.perf_counter() - t0
    queue = tmp_path / "queue"
    Campaign(_spec(ExecutionPolicy(
        sink="framed", queue=str(queue), worker_id="w1", chunk_size=1,
        lease_timeout=120.0, poll_interval=0.05,
    ))).run()
    assert queue_status(queue).complete
    merged = tmp_path / "merged.jsonl"
    merge_shards(queue, merged)
    assert merged.read_bytes() == ref_path.read_bytes()

    # Scaling: replay the claim schedule over measured chunk costs.
    costs = _measure_chunk_costs()
    total, worst = sum(costs), max(costs)
    makespans = {n: _simulate_fleet(costs, n) for n in WORKER_COUNTS}
    speedups = {n: total / makespans[n] for n in WORKER_COUNTS}

    for n in WORKER_COUNTS:
        assert makespans[n] <= total / n + worst + 1e-9  # sanity: bound
    assert speedups[2] > 1.6, f"2 workers only {speedups[2]:.2f}x"
    assert speedups[4] > 2.6, f"4 workers only {speedups[4]:.2f}x"
    assert all(
        speedups[b] >= speedups[a] - 1e-9
        for a, b in zip(WORKER_COUNTS, WORKER_COUNTS[1:])
    )

    granularity = total / worst
    record("distributed work-stealing scaling (high-churn preset)", [
        f"single-machine framed run: {t_serial:.2f}s; "
        f"{len(costs)} chunks, total {total:.2f}s, "
        f"granularity total/max = {granularity:.1f}",
        *(
            f"{n} simulated workers: makespan {makespans[n]:.2f}s "
            f"(speedup {speedups[n]:.2f}x of ideal {n}x)"
            for n in WORKER_COUNTS
        ),
        "real-queue merge byte-identical to the single-machine run",
    ])


def test_pooled_worker_uses_local_cores(tmp_path, record):
    """One distributed worker with an in-machine process pool
    (``ExecutionPolicy.worker_processes``): the claim/lease protocol is
    unchanged and the merged output stays byte-identical, while the
    worker fans its claimed chunks' cells across local processes."""
    ref_path = tmp_path / "ref.jsonl"
    t0 = time.perf_counter()
    Campaign(_spec(ExecutionPolicy(sink="framed", chunk_size=1))).run(ref_path)
    t_serial = time.perf_counter() - t0

    queue = tmp_path / "queue"
    t0 = time.perf_counter()
    execution = Campaign(_spec(ExecutionPolicy(
        sink="framed", queue=str(queue), worker_id="pooled",
        worker_processes=2, chunk_size=1,
        lease_timeout=120.0, poll_interval=0.05,
    ))).run()
    t_pooled = time.perf_counter() - t0
    assert execution.report.workers == 2
    assert queue_status(queue).complete
    merged = tmp_path / "merged.jsonl"
    merge_shards(queue, merged)
    assert merged.read_bytes() == ref_path.read_bytes()

    record("distributed worker with in-machine process pool", [
        f"single-machine framed run: {t_serial:.2f}s",
        f"1 queue worker x 2 local processes: {t_pooled:.2f}s "
        "(includes pool startup; merge byte-identical)",
    ])
