"""E5 — Figure 8: waste ratios vs φ/R, Exa, M = 7 h.

Paper's reading: TRIPLE's gain grows to ≈ 25% of DOUBLE-NBL's waste at
φ/R = 1/10 while staying more reliable; BOF ≈ NBL throughout.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig8


def test_fig8_ratios(benchmark, record):
    data = benchmark(fig8.generate, num_phi=101)
    x = data.phi_over_r
    bof = data.series["DoubleBoF/DoubleNBL"]
    tri = data.series["Triple/DoubleNBL"]

    assert np.all(bof >= 1.0 - 1e-12)
    assert np.nanmax(bof) < 1.05  # "similar waste" on Exa

    idx_10 = int(np.argmin(np.abs(x - 0.1)))
    gain_at_tenth = 1.0 - tri[idx_10]
    assert 0.15 <= gain_at_tenth <= 0.30  # paper: "up to 25%"

    crossing = x[np.argmax(tri >= 1.0)] if np.any(tri >= 1.0) else np.nan
    lines = [
        "phi/R   BoF/NBL   Triple/NBL",
        *(f"{x[i]:5.2f}   {bof[i]:7.4f}   {tri[i]:10.4f}"
          for i in (0, 10, 25, 50, 75, 100)),
        f"TRIPLE gain at phi/R=0.1: {100 * gain_at_tenth:.1f}% (paper: ~25%)",
        f"TRIPLE/NBL crossover at phi/R = {crossing:.3f}",
    ]
    record("Figure 8 (Exa, M=7h)", lines)
