"""Campaign-service load: warm HTTP report queries vs. the in-process path.

Not a paper artefact — this measures the tentpole claim of the campaign
service (:mod:`repro.service`): a live daemon answers warm report
queries from the compacted store at interactive latency and real
concurrency, so a fleet of clients can mine a finished campaign without
ever paying for a simulation.

The measurement: warehouse the ``high-churn`` preset once, then

* time the **in-process** warm path (``store_report`` over the hot-cell
  cache) as the floor;
* hammer the daemon with ``THREADS`` clients × ``QUERIES_PER_THREAD``
  warm ``GET /reports`` each, over persistent HTTP/1.1 connections, and
  take the latency distribution.

Gates: every query is warm (**zero** simulations, asserted via a
counting backend factory that must never be invoked), the daemon
genuinely served requests concurrently (server-side busy time from the
``repro_http_request_seconds`` histogram must exceed the wall clock —
a serial server can never get there), and the HTTP p50 stays within a
fixed multiple of the in-process p50 — the daemon may add transport
cost, not a second execution path.  The nightly run also scrapes
``GET /metrics`` mid-load (the exposition must stay parseable while
the daemon is saturated) and asserts afterwards that the per-route
request histogram counted every client query.

The store's ``peak_concurrent`` reader count is recorded but *not*
gated: a warm lookup is a ~10 us in-memory hit, and whether two of 8
GIL-bound handler threads are ever preempted inside the same window is
a scheduling lottery (observed 1-3 across identical runs).  The
histogram busy-time ratio asserts the same property — overlapping
service — deterministically, because each of the 8 clients keeps one
~100 ms request in flight essentially the whole run.
"""

from __future__ import annotations

import http.client
import json
import re
import statistics
import threading
import time
import urllib.parse
import urllib.request

from repro.experiments.report import store_report
from repro.experiments.scenarios import get_campaign_preset
from repro.service import CampaignService
from repro.sim.executor import execute_spec
from repro.sim.spec import CampaignSpec
from repro.store import CampaignStore

PRESET = "high-churn"
REPLICAS = 4
THREADS = 8
QUERIES_PER_THREAD = 40
WARMUP_QUERIES = 5
#: The daemon's warm p50 must stay within this multiple of the
#: in-process warm p50 (floored at 25 ms so a very fast floor does not
#: turn transport jitter into a failure).
P50_MULTIPLE = 50.0
P50_FLOOR = 0.025
#: Server-side busy time (sum of request durations) over wall clock
#: must exceed this: > 1.0 is impossible for a serial server, and 8
#: always-busy clients keep the true ratio near 8.
MIN_BUSY_RATIO = 2.0


def _spec() -> CampaignSpec:
    return get_campaign_preset(PRESET).spec(replicas=REPLICAS)


def _percentile(samples: list[float], q: float) -> float:
    return statistics.quantiles(samples, n=100)[int(q) - 1]


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (\S+)$")


def _scrape_metrics(service: CampaignService) -> dict[str, float]:
    """``GET /metrics`` parsed strictly: every non-comment line must be
    ``name[{labels}] value`` or the scrape (and the gate) fails."""
    with urllib.request.urlopen(service.url("/metrics"),
                                timeout=30.0) as resp:
        assert resp.status == 200
        text = resp.read().decode("utf-8")
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        samples[match.group(1)] = float(match.group(2))
    return samples


def test_service_warm_query_load(tmp_path, record):
    spec = _spec()
    store_dir = tmp_path / "store"

    # Warehouse the grid once, then compact to the served layout.
    store = CampaignStore(store_dir, create=True)
    execute_spec(spec, store=store)
    store.compact()

    # ---- floor: the in-process warm path ---------------------------
    store_report(store, spec)  # prime the hot-cell cache
    inproc = []
    for _ in range(50):
        start = time.perf_counter()
        store_report(store, spec)
        inproc.append(time.perf_counter() - start)
    inproc_p50 = statistics.median(inproc)

    # ---- the daemon under load -------------------------------------
    built = []

    def factory(s):
        built.append(s)
        return None

    spec_param = urllib.parse.urlencode(
        {"spec": json.dumps(spec.to_dict())})
    path = "/reports?" + spec_param

    with CampaignService(
        store=store_dir, data_dir=tmp_path / "svc",
        backend_factory=factory,
    ) as service:
        latencies: list[list[float]] = [[] for _ in range(THREADS)]
        errors: list[str] = []
        barrier = threading.Barrier(THREADS)

        def client(i: int) -> None:
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=60.0)
            try:
                for q in range(WARMUP_QUERIES + QUERIES_PER_THREAD):
                    if q == WARMUP_QUERIES:
                        barrier.wait(timeout=60.0)
                    start = time.perf_counter()
                    conn.request("GET", path)
                    resp = conn.getresponse()
                    payload = json.loads(resp.read())
                    elapsed = time.perf_counter() - start
                    if resp.status != 200:
                        errors.append(f"status {resp.status}")
                        return
                    if payload["simulated_cells"] != 0:
                        errors.append("a warm query simulated")
                        return
                    if q >= WARMUP_QUERIES:
                        latencies[i].append(elapsed)
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(repr(exc))
            finally:
                conn.close()

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(THREADS)]
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        # Scrape the exposition while the daemon is saturated — it must
        # stay parseable mid-load, not just at rest.
        midload = _scrape_metrics(service)
        assert any(key.startswith("repro_store_lookups_total")
                   for key in midload)
        for t in threads:
            t.join(timeout=300.0)
        wall = time.perf_counter() - wall_start
        reads = service.store.read_stats()

        # The request histogram must have counted every client query
        # (warmup included).  The last observations land in handler
        # finallys just after the response bytes, so poll briefly.
        histogram_key = ('repro_http_request_seconds_count'
                         '{method="GET",route="/reports"}')
        busy_key = ('repro_http_request_seconds_sum'
                    '{method="GET",route="/reports"}')
        expected_requests = THREADS * (WARMUP_QUERIES
                                       + QUERIES_PER_THREAD)
        deadline = time.monotonic() + 10.0
        while True:
            final = _scrape_metrics(service)
            seen_requests = final.get(histogram_key, 0.0)
            if seen_requests >= expected_requests \
                    or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        busy_seconds = final.get(busy_key, 0.0)

    assert not errors, errors
    samples = [s for per_thread in latencies for s in per_thread]
    assert len(samples) == THREADS * QUERIES_PER_THREAD
    # Zero simulations is a counting fact: no fill backend was built.
    assert built == []
    # The daemon really served requests concurrently: total in-handler
    # time well past the wall clock is only possible with overlap.
    busy_ratio = busy_seconds / wall
    assert busy_ratio >= MIN_BUSY_RATIO, (
        f"server-side busy time {busy_seconds:.2f} s over {wall:.2f} s "
        f"wall is a concurrency ratio of {busy_ratio:.2f} "
        f"(need >= {MIN_BUSY_RATIO})"
    )
    assert seen_requests >= expected_requests, (
        f"request histogram saw {seen_requests:.0f} /reports requests, "
        f"clients issued {expected_requests}"
    )

    http_p50 = statistics.median(samples)
    http_p99 = _percentile(samples, 99)
    throughput = len(samples) / wall
    budget = max(P50_MULTIPLE * inproc_p50, P50_FLOOR)
    assert http_p50 <= budget, (
        f"warm HTTP p50 {http_p50 * 1e3:.2f} ms exceeds "
        f"{P50_MULTIPLE:.0f}x the in-process warm p50 "
        f"({inproc_p50 * 1e3:.2f} ms)"
    )

    record("Campaign service warm-query load", [
        f"grid: {PRESET} x{REPLICAS} replicas, "
        f"{THREADS} clients x {QUERIES_PER_THREAD} queries",
        f"in-process warm p50: {inproc_p50 * 1e3:8.2f} ms",
        f"HTTP warm p50:       {http_p50 * 1e3:8.2f} ms "
        f"(budget {budget * 1e3:.2f} ms)",
        f"HTTP warm p99:       {http_p99 * 1e3:8.2f} ms",
        f"throughput:          {throughput:8.1f} queries/s "
        f"over {wall:.2f} s",
        f"concurrency:         {busy_ratio:.1f}x busy-time ratio "
        f"({busy_seconds:.2f} s in-handler over {wall:.2f} s wall)",
        f"store reads:         {reads.describe()}",
        f"request histogram:   {seen_requests:.0f} /reports requests "
        f"metered (clients issued {expected_requests})",
        "simulations during load: 0 (counting-backend proof)",
    ])
