"""Campaign-service load: warm HTTP report queries vs. the in-process path.

Not a paper artefact — this measures the tentpole claim of the campaign
service (:mod:`repro.service`): a live daemon answers warm report
queries from the compacted store at interactive latency and real
concurrency, so a fleet of clients can mine a finished campaign without
ever paying for a simulation.

The measurement: warehouse the ``high-churn`` preset once, then

* time the **in-process** warm path (``store_report`` over the hot-cell
  cache) as the floor;
* hammer the daemon with ``THREADS`` clients × ``QUERIES_PER_THREAD``
  warm ``GET /reports`` each, over persistent HTTP/1.1 connections, and
  take the latency distribution.

Gates: every query is warm (**zero** simulations, asserted via a
counting backend factory that must never be invoked), the store
observed genuinely concurrent readers, and the HTTP p50 stays within a
fixed multiple of the in-process p50 — the daemon may add transport
cost, not a second execution path.
"""

from __future__ import annotations

import http.client
import json
import statistics
import threading
import time
import urllib.parse

from repro.experiments.report import store_report
from repro.experiments.scenarios import get_campaign_preset
from repro.service import CampaignService
from repro.sim.executor import execute_spec
from repro.sim.spec import CampaignSpec
from repro.store import CampaignStore

PRESET = "high-churn"
REPLICAS = 4
THREADS = 8
QUERIES_PER_THREAD = 40
WARMUP_QUERIES = 5
#: The daemon's warm p50 must stay within this multiple of the
#: in-process warm p50 (floored at 25 ms so a very fast floor does not
#: turn transport jitter into a failure).
P50_MULTIPLE = 50.0
P50_FLOOR = 0.025


def _spec() -> CampaignSpec:
    return get_campaign_preset(PRESET).spec(replicas=REPLICAS)


def _percentile(samples: list[float], q: float) -> float:
    return statistics.quantiles(samples, n=100)[int(q) - 1]


def test_service_warm_query_load(tmp_path, record):
    spec = _spec()
    store_dir = tmp_path / "store"

    # Warehouse the grid once, then compact to the served layout.
    store = CampaignStore(store_dir, create=True)
    execute_spec(spec, store=store)
    store.compact()

    # ---- floor: the in-process warm path ---------------------------
    store_report(store, spec)  # prime the hot-cell cache
    inproc = []
    for _ in range(50):
        start = time.perf_counter()
        store_report(store, spec)
        inproc.append(time.perf_counter() - start)
    inproc_p50 = statistics.median(inproc)

    # ---- the daemon under load -------------------------------------
    built = []

    def factory(s):
        built.append(s)
        return None

    spec_param = urllib.parse.urlencode(
        {"spec": json.dumps(spec.to_dict())})
    path = "/reports?" + spec_param

    with CampaignService(
        store=store_dir, data_dir=tmp_path / "svc",
        backend_factory=factory,
    ) as service:
        latencies: list[list[float]] = [[] for _ in range(THREADS)]
        errors: list[str] = []
        barrier = threading.Barrier(THREADS)

        def client(i: int) -> None:
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=60.0)
            try:
                for q in range(WARMUP_QUERIES + QUERIES_PER_THREAD):
                    if q == WARMUP_QUERIES:
                        barrier.wait(timeout=60.0)
                    start = time.perf_counter()
                    conn.request("GET", path)
                    resp = conn.getresponse()
                    payload = json.loads(resp.read())
                    elapsed = time.perf_counter() - start
                    if resp.status != 200:
                        errors.append(f"status {resp.status}")
                        return
                    if payload["simulated_cells"] != 0:
                        errors.append("a warm query simulated")
                        return
                    if q >= WARMUP_QUERIES:
                        latencies[i].append(elapsed)
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(repr(exc))
            finally:
                conn.close()

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(THREADS)]
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        wall = time.perf_counter() - wall_start
        reads = service.store.read_stats()

    assert not errors, errors
    samples = [s for per_thread in latencies for s in per_thread]
    assert len(samples) == THREADS * QUERIES_PER_THREAD
    # Zero simulations is a counting fact: no fill backend was built.
    assert built == []
    # The daemon really served readers concurrently.
    assert reads.peak_concurrent >= 2, reads.describe()

    http_p50 = statistics.median(samples)
    http_p99 = _percentile(samples, 99)
    throughput = len(samples) / wall
    budget = max(P50_MULTIPLE * inproc_p50, P50_FLOOR)
    assert http_p50 <= budget, (
        f"warm HTTP p50 {http_p50 * 1e3:.2f} ms exceeds "
        f"{P50_MULTIPLE:.0f}x the in-process warm p50 "
        f"({inproc_p50 * 1e3:.2f} ms)"
    )

    record("Campaign service warm-query load", [
        f"grid: {PRESET} x{REPLICAS} replicas, "
        f"{THREADS} clients x {QUERIES_PER_THREAD} queries",
        f"in-process warm p50: {inproc_p50 * 1e3:8.2f} ms",
        f"HTTP warm p50:       {http_p50 * 1e3:8.2f} ms "
        f"(budget {budget * 1e3:.2f} ms)",
        f"HTTP warm p99:       {http_p99 * 1e3:8.2f} ms",
        f"throughput:          {throughput:8.1f} queries/s "
        f"over {wall:.2f} s",
        f"store reads:         {reads.describe()}",
        "simulations during load: 0 (counting-backend proof)",
    ])
