"""Shared-store load under genuinely concurrent multi-worker traffic.

Not a paper artefact — this hammers the content-addressed results store
(:mod:`repro.store`) the way a fleet does: several independently started
OS worker processes join one work-stealing queue, each fanning cells
across its own process pool (``--worker-procs``, the load generator),
and all of them publish to — then on the second pass read from — a
single shared store directory concurrently.

What must hold under that interleaving (the store's whole value
proposition, asserted on the runs being timed):

* **Losslessness** — the merged cold output is byte-identical to a
  single-machine framed run of the same spec, and the store passes a
  full ``--verify`` sweep after the concurrent publish storm (atomic
  renames never expose torn entries).
* **Warm service** — a second fleet against the same store simulates
  nothing: every cell is served from the warehouse, the merged bytes do
  not change, and the warm fleet's wall-clock beats the cold one (it
  does pure I/O while cold paid DES).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from repro.sim.distributed import merge_shards, queue_status
from repro.sim.spec import Campaign, ExecutionPolicy
from repro.experiments.scenarios import get_campaign_preset

PRESET = "high-churn"
REPLICAS = 4
N_WORKERS = 3        # independent OS processes joining the queue
WORKER_PROCS = 2     # process-pool fan-out inside each worker


def _spec(policy: ExecutionPolicy):
    return get_campaign_preset(PRESET).spec(replicas=REPLICAS,
                                            policy=policy)


def _cli(*argv) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _run_fleet(queue: pathlib.Path, store: pathlib.Path) -> float:
    """Start N workers against (queue, store); wall-clock to drain."""
    t0 = time.perf_counter()
    workers = [
        _cli("campaign", "--preset", PRESET,
             "--replicas", str(REPLICAS), "--chunk-size", "1",
             "--queue", str(queue), "--worker-id", f"w{i}",
             "--worker-procs", str(WORKER_PROCS),
             "--lease", "120", "--poll", "0.05",
             "--store", str(store))
        for i in range(N_WORKERS)
    ]
    for proc in workers:
        out, err = proc.communicate(timeout=600)
        assert proc.returncode == 0, err
    return time.perf_counter() - t0


def test_concurrent_fleet_against_one_store(tmp_path, record):
    ref_path = tmp_path / "ref.jsonl"
    Campaign(_spec(ExecutionPolicy(sink="framed", chunk_size=1))) \
        .run(ref_path)
    ref = ref_path.read_bytes()
    store = tmp_path / "store"

    # Cold: every cell simulated somewhere in the fleet, every worker
    # publishing into the shared store while the others do too.
    cold_queue = tmp_path / "cold-queue"
    t_cold = _run_fleet(cold_queue, store)
    assert queue_status(cold_queue).complete
    cold_merged = tmp_path / "cold.jsonl"
    merge_shards(cold_queue, cold_merged)
    assert cold_merged.read_bytes() == ref

    # The publish storm left a coherent store: full integrity sweep.
    proc = _cli("store", "stat", "--store", str(store), "--verify",
                "--cache")
    out, err = proc.communicate(timeout=300)
    assert proc.returncode == 0, err

    # Warm: a fresh fleet against the warehoused grid simulates nothing
    # and merges to the same bytes.
    warm_queue = tmp_path / "warm-queue"
    t_warm = _run_fleet(warm_queue, store)
    assert queue_status(warm_queue).complete
    warm_merged = tmp_path / "warm.jsonl"
    merge_shards(warm_queue, warm_merged)
    assert warm_merged.read_bytes() == ref
    assert t_warm < t_cold, (
        f"warm fleet ({t_warm:.2f}s, pure store reads) should beat the "
        f"cold fleet ({t_cold:.2f}s, full DES)"
    )

    record("Shared store under concurrent multi-worker load", [
        f"fleet: {N_WORKERS} workers x --worker-procs {WORKER_PROCS}, "
        f"preset {PRESET}, {REPLICAS} replicas, chunk_size=1",
        f"cold fleet (simulate + publish): {t_cold:.2f}s",
        f"warm fleet (store-served):       {t_warm:.2f}s "
        f"({t_cold / t_warm:.1f}x)",
        "merged bytes identical to single-machine run, cold and warm; "
        "store --verify clean after the publish storm",
    ])
