"""Results-store caching: cold vs. warm vs. 50 %-overlap campaign cost.

Not a paper artefact — this measures the tentpole claim of the
content-addressed results store (:mod:`repro.store`): because every
(cell, replica) simulation is warehoused under a key derived from
exactly the inputs that determine its bytes, a warm re-run of a
completed spec performs **zero** simulations (and is byte-identical),
and a half-overlapping grid pays for only its missing half.

Three timed points on the ``high-churn`` preset grid:

* **cold**   — empty store: every cell simulates and publishes;
* **warm**   — identical spec re-run: every cell served from the store;
* **overlap** — a grid sharing half its M axis with the cold run:
  only the novel half simulates.

The assertions are qualitative (warm ≪ cold; overlap simulates exactly
the missing cells; bytes identical), so the benchmark doubles as a
regression test for the caching invariants on a non-toy grid.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.experiments.scenarios import get_campaign_preset
from repro.sim.spec import Campaign, CampaignSpec
from repro.store import CampaignStore

PRESET = "high-churn"
REPLICAS = 4


def _spec() -> CampaignSpec:
    return get_campaign_preset(PRESET).spec(replicas=REPLICAS)


def _overlap_spec() -> CampaignSpec:
    """The preset grid with half its M axis shifted to novel values."""
    spec = _spec()
    m_values = spec.grid.m_values
    keep = m_values[:len(m_values) // 2 + len(m_values) % 2]
    novel = tuple(m * 7.0 for m in m_values[len(keep):])
    return replace(spec, grid=replace(spec.grid, m_values=keep + novel))


def _timed_run(spec, path, store):
    start = time.perf_counter()
    execution = Campaign(spec).run(path, store=store)
    return execution, time.perf_counter() - start


def test_store_cold_warm_overlap(tmp_path, record):
    store_dir = tmp_path / "store"
    spec = _spec()

    cold, t_cold = _timed_run(spec, tmp_path / "cold.jsonl", store_dir)
    n_cells = cold.report.cells_total
    assert cold.report.cells_cached == 0
    assert cold.report.cells_run == n_cells

    warm, t_warm = _timed_run(spec, tmp_path / "warm.jsonl", store_dir)
    assert warm.report.cells_run == 0
    assert warm.report.replicas_run == 0
    assert warm.report.cells_cached == n_cells
    assert (tmp_path / "warm.jsonl").read_bytes() \
        == (tmp_path / "cold.jsonl").read_bytes()
    assert t_warm < t_cold / 2, (
        f"warm run ({t_warm:.2f}s) should be far cheaper than cold "
        f"({t_cold:.2f}s)"
    )

    overlap_spec = _overlap_spec()
    overlap, t_overlap = _timed_run(
        overlap_spec, tmp_path / "overlap.jsonl", store_dir
    )
    shared = len({m for m in spec.grid.m_values}
                 & {m for m in overlap_spec.grid.m_values})
    expected_cached = (
        shared * len(spec.grid.phi_values) * len(spec.grid.protocols)
    )
    assert overlap.report.cells_cached == expected_cached
    assert overlap.report.cells_run \
        == overlap.report.cells_total - expected_cached

    stat = CampaignStore(store_dir).stat()
    record("results-store caching (high-churn preset)", [
        f"grid: {n_cells} cells x {REPLICAS} replicas; "
        f"store after all runs: {stat.describe()}",
        f"cold run   : {t_cold:.2f}s ({cold.report.cells_run} cells "
        "simulated, all published)",
        f"warm run   : {t_warm:.2f}s (0 simulations, "
        f"{warm.report.cells_cached} cells served; speedup "
        f"{t_cold / max(t_warm, 1e-9):.0f}x; bytes identical)",
        f"50% overlap: {t_overlap:.2f}s ({overlap.report.cells_run} "
        f"simulated, {overlap.report.cells_cached} served)",
    ])
