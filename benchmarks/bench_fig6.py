"""E3 — Figure 6: success-probability ratios, Base, θ = (α+1)R.

Paper's reading: ratios ≤ 1; NBL/BOF drops for M ≤ 60 s and runs over
10 days; TRIPLE's advantage is orders of magnitude at the same corner.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig6

DAY = 86400.0


def test_fig6_risk_ratios(benchmark, record):
    data = benchmark(fig6.generate, num_m=31, num_t=30)
    nbl_over_bof, bof_over_tri, nbl_over_tri = data.panels

    assert np.nanmax(nbl_over_bof.ratio) <= 1.0 + 1e-9
    assert np.nanmax(bof_over_tri.ratio) <= 1.0 + 1e-9

    # Corner (small M, long T): the paper's separation regime.
    corner = nbl_over_bof.ratio[0, -1]
    assert corner < 0.6
    # Away from the corner everything is ≈ 1.
    tame = nbl_over_bof.ratio[-1, 0]
    assert tame > 0.99

    m0 = nbl_over_bof.m_grid[0]
    t_last = nbl_over_bof.t_grid[-1]
    lines = [
        f"grid: M in [{nbl_over_bof.m_grid[0]:.0f}, {nbl_over_bof.m_grid[-1]:.0f}]s, "
        f"T in [{nbl_over_bof.t_grid[0]/DAY:.1f}, {t_last/DAY:.1f}] days",
        f"NBL/BOF  at (M={m0:.0f}s, T=30d): {corner:.4f}  (paper: <1, visible drop)",
        f"BOF/TRIPLE at same corner:        {bof_over_tri.ratio[0, -1]:.4f}",
        f"NBL/TRIPLE at same corner:        {nbl_over_tri.ratio[0, -1]:.4f} "
        "(paper body: orders-of-magnitude gain for TRIPLE)",
    ]
    assert nbl_over_tri.ratio[0, -1] < corner  # TRIPLE stronger than BOF effect
    record("Figure 6 (Base risk ratios)", lines)
