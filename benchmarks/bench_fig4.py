"""E1 — Figure 4: waste surfaces on the Base scenario.

Shape checks (paper §VI-A): waste ≈ 1 for M ≲ 1 min, ≈ 0 at one day;
TRIPLE gains the most from small φ.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4


def test_fig4_surfaces(benchmark, record):
    data = benchmark(fig4.generate, num_phi=41, num_m=49)
    by_key = {p.protocol: p for p in data.panels}

    for key, surf in by_key.items():
        low_m = surf.waste[surf.m_grid <= 30.0]
        high_m = surf.waste[surf.m_grid >= 0.9 * 86400.0]
        # φ = 0 saturates outright (A = D+R+θmax > M); the φ = R corner
        # keeps limping along (A = D+2R = 8 s) but wastes most of the
        # machine — the paper's "no progress happens" regime.
        assert low_m[:, 0].min() == 1.0, f"{key}: phi=0 must saturate"
        assert low_m.min() > 0.6, f"{key}: waste should be crippling at tiny MTBF"
        assert high_m.max() < 0.02, f"{key}: waste should vanish at 1 day"

    # TRIPLE benefits more from φ → 0 than the doubles (strongest at the
    # large-MTBF end where fault-free waste dominates, cf. Fig. 5's 0.25).
    row = np.argmin(np.abs(by_key["triple"].m_grid - 25200.0))
    tri = by_key["triple"].waste[row]
    nbl = by_key["double-nbl"].waste[row]
    assert tri[0] < 0.35 * nbl[0]  # φ = 0
    assert tri[-1] > nbl[-1]       # φ = R

    lines = []
    for key, surf in by_key.items():
        r = np.argmin(np.abs(surf.m_grid - 3600.0))
        lines.append(
            f"{key:14s} waste at M=1h: phi/R=0 -> {surf.waste[r, 0]:.4f}, "
            f"phi/R=0.5 -> {surf.waste[r, 20]:.4f}, "
            f"phi/R=1 -> {surf.waste[r, -1]:.4f}"
        )
    record("Figure 4 (Base waste surfaces; paper: TRIPLE best at low phi, "
           "all saturate below ~1min MTBF)", lines)
