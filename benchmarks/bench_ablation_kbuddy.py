"""E10 — ablation: generalised k-buddy groups (beyond the paper's k = 3).

The paper stops at triples; this ablation extends the model family to
k ∈ {2..6} and quantifies the diminishing returns: each extra buddy
multiplies the fatal probability by ~λ·Risk but adds overhead, risk-window
length and a full extra checkpoint image of memory.
"""

from __future__ import annotations

import numpy as np

from repro import scenarios
from repro.core.kbuddy import KBuddyModel, recommend_k

DAY = 86400.0


def _sweep():
    params = scenarios.BASE.parameters(M=60.0, n=10320)  # divisible by 2..6
    phi = 0.4
    T = 30 * DAY
    rows = []
    for k in range(2, 7):
        if params.n % k:
            continue
        model = KBuddyModel(k)
        rows.append((
            k,
            model.waste_at_optimum(params, phi),
            model.success_probability(params, phi, T),
            model.risk_window(params, phi),
            model.images_held(),
        ))
    best, _ = recommend_k(params, phi, T, target_success=0.995)
    return rows, best


def test_kbuddy_ablation(benchmark, record):
    rows, best = benchmark(_sweep)
    ks = [r[0] for r in rows]
    wastes = [r[1] for r in rows]
    succ = [r[2] for r in rows]
    # Success strictly improves with k; waste strictly grows (phi > 0).
    assert all(b >= a for a, b in zip(succ, succ[1:]))
    assert all(b >= a - 1e-12 for a, b in zip(wastes, wastes[1:]))
    # k = 3 (the paper's TRIPLE) already clears the 99.5% target here
    # (it lands at 0.9984 — four buddies would buy the last decimal).
    assert best == 3
    assert succ[ks.index(3)] > 0.995
    # k = 4 buys < 1e-3 extra success at measurable waste cost.
    gain_4 = succ[ks.index(4)] - succ[ks.index(3)]
    assert gain_4 < 2e-3

    lines = ["k   waste     P(success,30d)  risk[s]  images/node",
             *(f"{k}   {w:.5f}  {p:.9f}   {r:7.1f}  {img}"
               for k, w, p, r, img in rows),
             f"recommend_k(target 0.995) -> k = {best} "
             "(the paper's TRIPLE is the sweet spot)"]
    record("Ablation: k-buddy group size (M=60s, phi/R=0.1, T=30d)", lines)
