"""Ordered vs framed result sinks under a deliberately skewed grid.

Not a paper artefact — this measures the head-of-line effect the framed
sink exists to remove.  The grid is skewed on purpose: one M row sits in
the failure-dominated regime (M = 2 min ⇒ constant rollbacks, slow DES)
while the others are calm and fast.  Under the ordered sink, every record
waits for the slow row before it may be written; under the framed sink,
fast cells land on disk the moment they complete.

Reported metrics (per sink mode, identical grid, 2 workers):

* wall-clock of the whole campaign (similar by construction — the same
  108 DES runs execute either way);
* per-cell *emission latency* — how long after campaign start each cell
  reached the sink — whose mean/median collapse under the framed sink;
* time until half the cells were durable on disk.

Correctness is asserted, timing is reported: the two files must hold the
identical record multiset, and the framed file must resume-scan cleanly.
"""

from __future__ import annotations

import time

from repro import DOUBLE_BOF, DOUBLE_NBL, TRIPLE, scenarios
from repro import io as repro_io
from repro.sim.campaign import CampaignConfig
from repro.sim.spec import Campaign, CampaignSpec, ExecutionPolicy


def _skewed_spec(sink: str) -> CampaignSpec:
    """3 protocols × 3 M × 2 φ; the M=120 s row dominates the runtime."""
    return CampaignSpec(
        grid=CampaignConfig(
            protocols=(DOUBLE_NBL, DOUBLE_BOF, TRIPLE),
            base_params=scenarios.BASE.parameters(M=600.0, n=24),
            m_values=(120.0, 3600.0, 7200.0),
            phi_values=(0.5, 2.0),
            work_target=1800.0,
            replicas=6,
            seed=20260729,
            share_traces=True,
        ),
        policy=ExecutionPolicy(workers=2, chunk_size=1, sink=sink),
    )


def _run(tmp_path, name: str, sink: str):
    emit_times: list[float] = []
    start = time.perf_counter()
    execution = Campaign(_skewed_spec(sink)).run(
        tmp_path / f"{name}.jsonl",
        on_cell=lambda cell: emit_times.append(time.perf_counter() - start),
    )
    elapsed = time.perf_counter() - start
    return execution, elapsed, sorted(emit_times)


def _record_set(path):
    return sorted(
        repro_io.dump_result(r) for r in repro_io.iter_campaign_runs(path)
    )


def test_framed_sink_removes_head_of_line_blocking(tmp_path, record):
    ordered, t_ordered, lat_ordered = _run(tmp_path, "ordered", "ordered")
    framed, t_framed, lat_framed = _run(tmp_path, "framed", "framed")

    assert ordered.report.cells_run == framed.report.cells_run == 18
    assert _record_set(tmp_path / "ordered.jsonl") == \
        _record_set(tmp_path / "framed.jsonl")
    # The framed file resume-scans cleanly end to end.
    frames = list(repro_io.scan_frames(tmp_path / "framed.jsonl"))
    assert [f.seq for f, _ in frames] == list(range(18 * 6))

    half = len(lat_ordered) // 2
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    record("Sink modes under a skewed grid (slow M=2min row, 2 workers)", [
        "grid: 3 protocols x 3 M x 2 phi x 6 replicas = 108 DES runs",
        f"wall-clock        ordered {t_ordered:6.2f}s   framed {t_framed:6.2f}s",
        f"mean emit latency ordered {mean(lat_ordered):6.2f}s   "
        f"framed {mean(lat_framed):6.2f}s",
        f"half-grid durable ordered {lat_ordered[half]:6.2f}s   "
        f"framed {lat_framed[half]:6.2f}s",
        "(identical record multisets; framed frames contiguous 0..107)",
    ])
