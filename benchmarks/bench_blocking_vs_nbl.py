"""E14 — the original blocking buddy algorithm [1] vs the semi-blocking [2].

§VI-A: "the benefit of a non-blocking approach is small, but noticeable".
Quantified here with a subtlety the model exposes: at φ = 0 the stretched
window (θ = (1+α)R) *loses* to plain blocking when failures are frequent
(A = D+R+θmax ≫ D+2R).  The semi-blocking algorithm only dominates once
its overhead is tuned — at φ = R it reproduces the blocking algorithm
exactly, so tuned-NBL ≤ blocking everywhere, with the gain growing with
the MTBF.  The risk price of the stretched window is reported alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DOUBLE_BLOCKING, DOUBLE_NBL, scenarios, success_probability
from repro.analysis.tuning import optimal_phi
from repro.core.waste import waste_at_optimum

DAY = 86400.0


def _sweep():
    rows = []
    for m in (120.0, 600.0, 3600.0, 25200.0, DAY):
        params = scenarios.BASE.parameters(M=m)
        w_blk = float(np.asarray(
            waste_at_optimum(DOUBLE_BLOCKING, params, 0.0).total))
        w_phi0 = float(np.asarray(
            waste_at_optimum(DOUBLE_NBL, params, 0.0).total))
        tuned = optimal_phi(DOUBLE_NBL, params)
        rows.append((m, w_blk, w_phi0, tuned.phi, tuned.waste))
    risk_params = scenarios.BASE.parameters(M=60.0)
    p_blk = success_probability(DOUBLE_BLOCKING, risk_params, 0.0, 10 * DAY)
    p_nbl = success_probability(DOUBLE_NBL, risk_params, 0.0, 10 * DAY)
    return rows, (p_blk, p_nbl)


def test_blocking_vs_nbl(benchmark, record):
    rows, (p_blk, p_nbl) = benchmark(_sweep)
    for m, w_blk, w_phi0, phi_star, w_tuned in rows:
        # Tuned semi-blocking never loses to the blocking algorithm: at
        # phi = R they coincide (same c = δ+R, same A = D+2R).
        assert w_tuned <= w_blk + 1e-9, (m, w_blk, w_tuned)
    # At low MTBF the tuner pins phi at R (mimic blocking)...
    assert rows[0][3] == pytest.approx(4.0, abs=0.05)
    # ...at high MTBF it hides the transfer and wins substantially.
    assert rows[-1][3] < 0.5
    gain_7h = (rows[3][1] - rows[3][4]) / rows[3][1]
    assert 0.10 < gain_7h < 0.60  # "small, but noticeable"
    # The stretched window's risk price (the gap [2] did not discuss).
    assert p_blk > p_nbl

    lines = ["M[s]     blocking[1]  NBL(phi=0)  NBL tuned (phi*)    gain",
             *(f"{m:8.0f} {w_blk:11.5f} {w_phi0:11.5f} "
               f"{w_tuned:9.5f} ({phi:4.2f})   "
               f"{(w_blk - w_tuned) / w_blk:+6.1%}"
               for m, w_blk, w_phi0, phi, w_tuned in rows),
             f"risk price at M=60s, T=10d, phi=0: P(success) blocking "
             f"{p_blk:.4f} vs NBL {p_nbl:.4f}",
             "paper: non-blocking benefit 'small, but noticeable'; its "
             "risk increase 'not addressed in [2]' - both reproduced, "
             "plus: the benefit requires tuning phi, not just phi -> 0"]
    record("Blocking [Zheng et al.] vs semi-blocking [Ni et al.] (Base)",
           lines)
