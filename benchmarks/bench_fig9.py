"""E6 — Figure 9: success-probability ratios, Exa, θ = (α+1)R.

Paper's reading: BOF's reliability edge over NBL is larger than on Base
for long runs; TRIPLE stays ≈ 1 even at the worst corner.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig9

WEEK = 7 * 86400.0


def test_fig9_risk_ratios(benchmark, record):
    data = benchmark(fig9.generate, num_m=31, num_t=30)
    nbl_over_bof, bof_over_tri, nbl_over_tri = data.panels

    # Worst sampled corner: M = 3600/31 ≈ 116 s, T = 60 weeks.
    corner_nbl_bof = nbl_over_bof.ratio[0, -1]
    corner_bof_tri = bof_over_tri.ratio[0, -1]
    assert corner_nbl_bof < 0.3   # exascale: NBL loses most of its runs
    assert corner_bof_tri < 0.7   # even BOF visibly trails TRIPLE here
    assert np.nanmax(nbl_over_bof.ratio) <= 1.0 + 1e-9

    # TRIPLE's own success stays ~1 at the corner (risk window (α+1)R).
    from repro import TRIPLE, scenarios, success_probability

    params = scenarios.EXA.parameters(M=float(nbl_over_bof.m_grid[0]))
    p_tri = success_probability(TRIPLE, params, 0.0,
                                float(nbl_over_bof.t_grid[-1]))
    assert p_tri > 0.98

    lines = [
        f"grid: M in [{nbl_over_bof.m_grid[0]:.0f}, "
        f"{nbl_over_bof.m_grid[-1]:.0f}]s, T up to "
        f"{nbl_over_bof.t_grid[-1]/WEEK:.0f} weeks",
        f"NBL/BOF  at worst corner: {corner_nbl_bof:.2e} (paper: strong drop)",
        f"BOF/TRIPLE at worst corner: {corner_bof_tri:.4f}",
        f"NBL/TRIPLE at worst corner: {nbl_over_tri.ratio[0, -1]:.2e}",
        f"TRIPLE success at worst corner: {p_tri:.5f} (paper: ~1)",
    ]
    record("Figure 9 (Exa risk ratios)", lines)
