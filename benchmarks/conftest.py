"""Benchmark harness configuration.

Every benchmark regenerates one paper artefact (table/figure) or an
ablation, asserts its qualitative shape against the paper's claims, and
prints the headline numbers so the benchmark log doubles as the
reproduction record (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def emit(title: str, lines: list[str]) -> None:
    """Print a compact artefact summary into the benchmark log."""
    print(f"\n### {title}")
    for line in lines:
        print(f"    {line}")


@pytest.fixture
def record(capsys):
    """Run the emitter outside capture so summaries reach the console."""

    def _record(title: str, lines: list[str]) -> None:
        with capsys.disabled():
            emit(title, lines)

    return _record
