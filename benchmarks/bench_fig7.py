"""E4 — Figure 7: waste surfaces on the Exa scenario.

Paper's reading (§VI-B): same behaviour as Base, and "waste will be
important when failures hit the system more than once a day".
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig7


def test_fig7_surfaces(benchmark, record):
    data = benchmark(fig7.generate, num_phi=41, num_m=49)
    by_key = {p.protocol: p for p in data.panels}

    for key, surf in by_key.items():
        assert surf.waste[surf.m_grid <= 61.0].min() > 0.9, key
        assert surf.waste[surf.m_grid >= 0.9 * 86400.0].max() < 0.2, key

    # "More than once a day" claim: at M = 2h the waste is substantial.
    nbl = by_key["double-nbl"]
    row_2h = np.argmin(np.abs(nbl.m_grid - 7200.0))
    assert nbl.waste[row_2h].min() > 0.10

    lines = []
    for key, surf in by_key.items():
        r = np.argmin(np.abs(surf.m_grid - 7200.0))
        lines.append(
            f"{key:14s} waste at M=2h: phi/R=0 -> {surf.waste[r, 0]:.4f}, "
            f"phi/R=1 -> {surf.waste[r, -1]:.4f}"
        )
        r24 = np.argmin(np.abs(surf.m_grid - 86400.0))
        lines.append(
            f"{key:14s} waste at M=1d: phi/R=0 -> {surf.waste[r24, 0]:.4f}"
        )
    record("Figure 7 (Exa waste surfaces; paper: waste important when "
           "failures > 1/day)", lines)
