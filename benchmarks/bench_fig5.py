"""E2 — Figure 5: waste ratios vs φ/R, Base, M = 7 h.

Paper's reading: BOF/NBL ≥ 1 shrinking to 1 at φ/R = 1; TRIPLE/NBL ≈ 0.25
at φ/R = 0, crossing 1 near 0.5–0.6, worst ≈ 1.15 at φ/R = 1.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5


def test_fig5_ratios(benchmark, record):
    data = benchmark(fig5.generate, num_phi=101)
    x = data.phi_over_r
    bof = data.series["DoubleBoF/DoubleNBL"]
    tri = data.series["Triple/DoubleNBL"]

    assert np.all(bof >= 1.0 - 1e-12)
    assert bof[-1] == 1.0
    assert abs(tri[0] - 0.2526) < 0.01
    assert abs(tri[-1] - 1.1515) < 0.01
    crossing = x[np.argmax(tri >= 1.0)]
    assert 0.45 <= crossing <= 0.70

    idxs = [0, 10, 25, 50, 75, 100]
    lines = ["phi/R   BoF/NBL   Triple/NBL   (paper: 0.25 @0, cross ~0.5-0.6, 1.15 @1)"]
    lines += [f"{x[i]:5.2f}   {bof[i]:7.4f}   {tri[i]:10.4f}" for i in idxs]
    lines.append(f"TRIPLE/NBL crossover at phi/R = {crossing:.3f}")
    record("Figure 5 (Base, M=7h)", lines)
