"""E9 — ablation: blocking-on-failure recovery for the TRIPLE algorithm.

§IV sketches two TRIPLE recovery variants and §V-C gives their risk
windows (D + R + 2θ vs D + 3R).  The paper analyses only the non-blocking
one "because the risk is already very low in both versions" — this
ablation quantifies exactly how much risk and waste separate them.
"""

from __future__ import annotations

import numpy as np

from repro import TRIPLE, TRIPLE_BOF, scenarios, risk_window, success_probability
from repro.core.waste import waste_at_optimum

DAY = 86400.0


def _compare():
    params = scenarios.BASE.parameters(M=60.0)
    waste_params = scenarios.BASE.parameters(M="7h")
    out = {}
    for spec in (TRIPLE, TRIPLE_BOF):
        out[spec.key] = {
            "risk": risk_window(spec, params, 0.0),
            "succ_30d": float(np.asarray(
                success_probability(spec, params, 0.0, 30 * DAY))),
            "waste": float(np.asarray(
                waste_at_optimum(spec, waste_params, 1.0).total)),
        }
    return out


def test_triple_bof_ablation(benchmark, record):
    data = benchmark(_compare)
    nbl, bof = data["triple"], data["triple-bof"]
    assert bof["risk"] < nbl["risk"]           # D+3R < D+R+2θ for α=10
    assert bof["succ_30d"] >= nbl["succ_30d"]
    assert bof["waste"] >= nbl["waste"]        # blocking resends cost waste
    # Paper's judgement: both risks already tiny, so differences are small.
    assert nbl["succ_30d"] > 0.99

    lines = [
        f"{'variant':12s} {'risk[s]':>8s} {'P(success,30d,M=60s)':>22s} "
        f"{'waste(M=7h)':>12s}",
        *(f"{k:12s} {v['risk']:8.1f} {v['succ_30d']:22.6f} {v['waste']:12.6f}"
          for k, v in data.items()),
        "paper (§IV): analyses only non-blocking TRIPLE since both risks "
        "are already very low — confirmed",
    ]
    record("Ablation: TRIPLE vs TRIPLE-BOF recovery", lines)
