"""E11 — ablation: non-exponential failures (Weibull infant mortality).

The paper's waste model only assumes uniform strike position (any law),
but its risk analysis and optimal periods assume exponential arrivals;
the related work (§VII, refs [8]–[11]) studies Weibull laws.  This
ablation runs the *event simulator* under Weibull(k=0.7) inter-arrivals —
same node MTBF, clustered failures — and measures how far the
exponential-optimal period drifts from optimal.
"""

from __future__ import annotations

import numpy as np

from repro import DOUBLE_NBL, scenarios
from repro.sim.des import DesConfig, run_des_batch, summarize_waste
from repro.sim.distributions import Exponential, Weibull


def _measure(distribution, replicas=8):
    params = scenarios.BASE.parameters(M=900.0, n=32)
    cfg = DesConfig(protocol=DOUBLE_NBL, params=params, phi=1.0,
                    work_target=6 * 3600.0, seed=616,
                    distribution=distribution)
    results = run_des_batch(cfg, replicas=replicas)
    ok = [r for r in results if r.succeeded]
    return summarize_waste(ok), len(ok), len(results)


def _run():
    exp_summary, exp_ok, exp_n = _measure(Exponential(1.0))
    wb_summary, wb_ok, wb_n = _measure(Weibull(1.0, shape=0.7))
    return exp_summary, wb_summary, (exp_ok, exp_n, wb_ok, wb_n)


def test_weibull_ablation(benchmark, record):
    exp_summary, wb_summary, counts = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    # Same MTBF: mean waste comparable (the waste model only needs the
    # first moment + uniform strike position)...
    assert np.isfinite(exp_summary.mean) and np.isfinite(wb_summary.mean)
    assert abs(wb_summary.mean - exp_summary.mean) < 0.5 * exp_summary.mean
    # ...but clustered failures have heavier dispersion across replicas.
    lines = [
        f"exponential: waste {exp_summary.mean:.4f} "
        f"[{exp_summary.ci_low:.4f}, {exp_summary.ci_high:.4f}] "
        f"std {exp_summary.std:.4f} ({counts[0]}/{counts[1]} survived)",
        f"weibull k=0.7: waste {wb_summary.mean:.4f} "
        f"[{wb_summary.ci_low:.4f}, {wb_summary.ci_high:.4f}] "
        f"std {wb_summary.std:.4f} ({counts[2]}/{counts[3]} survived)",
        "same node MTBF; Weibull clusters failures (infant mortality) -> "
        "the first-moment waste model still tracks the mean, risk shifts "
        "to the tails (refs [8]-[11] territory)",
    ]
    record("Ablation: exponential vs Weibull(0.7) failures (DES)", lines)
