"""Fleet-scale store: warm-lookup latency must stay flat with size.

Not a paper artefact — this measures the tentpole claim of the store's
performance layer (segments + hot-cell cache): per-lookup cost on a
warm, lookup-heavy replay must be *independent of store size*, because
a compacted lookup is one in-memory index probe + one ``pread`` and a
cache hit is no I/O at all.  The loose one-file-per-entry layout is the
baseline it must beat.

For each store size (10k / 100k / 500k entries by default; override
with ``STORE_SCALE_SIZES=1000,5000`` for a quick local pass):

* **populate** — publish N synthetic entries through the ordinary
  atomic-rename path (synthetic keys varying only the seed field, one
  template result, so half a million entries need no simulation);
* **loose**    — per-lookup latency against the uncompacted tree with
  the cache disabled (full re-verification per hit: the pre-PR cost);
* **segment**  — the same probes after ``compact()`` (index + pread,
  still full verification — disk layout win alone);
* **cached**   — the same probes served by the hot-cell cache
  (digest-level re-check: the warm-replay steady state).

Gates (the CI nightly fails if either regresses):

* cached warm lookups at the top size are **≥ 10x** faster than the
  loose baseline at that size;
* cached per-lookup latency at the top size is within **2x** of the
  smallest size — flat, not merely faster.

A campaign-level coda re-asserts the transparency acceptance criterion
on real simulations: ``store export`` of a spec is byte-identical
before and after compaction.
"""

from __future__ import annotations

import os
import time

from repro import DOUBLE_NBL, TRIPLE, scenarios
from repro.sim.campaign import CampaignConfig
from repro.sim.executor import execute_spec
from repro.sim.results import DesResult
from repro.sim.spec import CampaignSpec, ExecutionPolicy
from repro.store import CampaignStore, HotCellCache

SIZES = tuple(
    int(s) for s in
    os.environ.get("STORE_SCALE_SIZES", "10000,100000,500000").split(",")
)
#: Lookups per timed pass (spread evenly across the key space).
PROBES = int(os.environ.get("STORE_SCALE_PROBES", "2000"))
REPEATS = 3

#: One synthetic replica key per entry: the shape of a real
#: :func:`repro.store.replica_key`, varying only the seed field, so a
#: 500k-entry store needs no simulation time to build.
_KEY_TEMPLATE = {
    "format": "repro-store-entry",
    "version": 1,
    "protocol": "double-nbl",
    "phi": 1.0,
    "work_target": 900.0,
    "max_time": None,
    "params": {"M": 600.0, "n": 12},
    "distribution": None,
    "trace_seed": None,
}

_RESULT = DesResult(
    status="success", makespan=40_000.0, work_target=36_000.0,
    work_done=36_000.0, failures=12, rollbacks=11, work_lost=480.0,
    commits=120, risk_time=3_600.0,
)


def _key(i: int) -> dict:
    return dict(_KEY_TEMPLATE, seed=i)


def _probe_keys(n: int) -> list[dict]:
    step = max(1, n // PROBES)
    return [_key(i) for i in range(0, n, step)][:PROBES]


def _per_lookup(store: CampaignStore, keys: list[dict]) -> float:
    """Best-of-N per-lookup seconds (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for key in keys:
            if store.lookup(key) is None:
                raise AssertionError("benchmark store lost an entry")
        best = min(best, time.perf_counter() - start)
    return best / len(keys)


def test_warm_lookup_latency_flat_with_store_size(tmp_path, record):
    lines = []
    loose_us: dict[int, float] = {}
    segment_us: dict[int, float] = {}
    cached_us: dict[int, float] = {}

    for n in SIZES:
        store_dir = tmp_path / f"store-{n}"
        writer = CampaignStore(store_dir)
        start = time.perf_counter()
        for i in range(n):
            writer.publish(_key(i), _RESULT)
        t_populate = time.perf_counter() - start
        keys = _probe_keys(n)

        loose = CampaignStore(store_dir, cache=None)
        loose_us[n] = _per_lookup(loose, keys) * 1e6

        start = time.perf_counter()
        report = loose.compact()
        t_compact = time.perf_counter() - start
        assert report.packed_entries == n and report.loose_remaining == 0

        segment_us[n] = _per_lookup(
            CampaignStore(store_dir, cache=None), keys) * 1e6

        cached = CampaignStore(store_dir, cache=HotCellCache())
        for key in keys:  # admit the probes, full verification
            assert cached.lookup(key) is not None
        cached_us[n] = _per_lookup(cached, keys) * 1e6

        lines.append(
            f"{n:>7} entries: populate {t_populate:5.1f}s, compact "
            f"{t_compact:5.1f}s; per-lookup loose {loose_us[n]:7.1f}us, "
            f"segment {segment_us[n]:6.1f}us, cached {cached_us[n]:5.2f}us"
        )

    top, small = SIZES[-1], SIZES[0]
    speedup = loose_us[top] / cached_us[top]
    flatness = cached_us[top] / cached_us[small]
    lines.append(
        f"gates: cached-vs-loose at {top} = {speedup:.0f}x (need >= 10x); "
        f"cached {small} -> {top} = {flatness:.2f}x (need <= 2x)"
    )
    record("fleet-scale store: lookup latency vs store size", lines)

    assert speedup >= 10.0, (
        f"warm cached replay at {top} entries is only {speedup:.1f}x "
        f"faster than the loose layout (need >= 10x)"
    )
    assert flatness <= 2.0, (
        f"warm-lookup latency grew {flatness:.2f}x from {small} to "
        f"{top} entries (must stay within 2x: flat, not merely fast)"
    )
    # The segment path (no cache) must not regress with size either.
    assert segment_us[top] <= 2.0 * segment_us[small], (
        "uncached segment lookups slowed down with store size: "
        f"{segment_us[small]:.1f}us -> {segment_us[top]:.1f}us"
    )


def test_export_byte_identical_across_compaction(tmp_path, record):
    """Acceptance coda on real simulations: compaction changes no
    emitted byte."""
    spec = CampaignSpec(
        grid=CampaignConfig(
            protocols=(DOUBLE_NBL, TRIPLE),
            base_params=scenarios.BASE.parameters(M=600.0, n=12),
            m_values=(300.0, 600.0),
            phi_values=(1.0,),
            work_target=900.0,
            replicas=2,
            seed=2027,
        ),
        policy=ExecutionPolicy(),
    )
    store_dir = tmp_path / "store"
    execute_spec(spec, results_path=tmp_path / "cold.jsonl",
                 store=store_dir)
    store = CampaignStore(store_dir, cache=None)
    store.export(spec, tmp_path / "pre.jsonl")
    report = store.compact()
    store.export(spec, tmp_path / "post.jsonl")
    identical = (tmp_path / "pre.jsonl").read_bytes() \
        == (tmp_path / "post.jsonl").read_bytes()
    record("store export across compaction", [
        f"packed {report.packed_entries} entries into 1 segment; "
        f"export byte-identical: {identical}",
    ])
    assert identical
